// Figure 14: whole-system resource utilization — Redis instances on a
// 4-core budget. With Copier, one core is dedicated to the service, so at
// most 3 instances run concurrently; when all cores are busy Copier still
// cuts request latency but total throughput dips a few percent (§6.3.4).
//
// Method: per-request app-core busy time and engine busy time are measured
// from one-instance virtual-time runs (the same machinery as Fig. 11), then
// composed over the core budget.
#include "bench/bench_util.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "src/apps/minikv.h"
#include "src/apps/miniproxy.h"
#include "src/libcopier/libcopier.h"
#include "src/simos/binder.h"

namespace copier::bench {
namespace {

struct PerRequest {
  double app_core_us = 0;     // busy time on the instance's core per request
  double engine_us = 0;       // Copier-core busy time per request
  double latency_us = 0;      // end-to-end (includes engine, §6.3.4)
};

PerRequest Measure(const hw::TimingModel& t, size_t vlen, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* server = stack.NewApp("kv");
  apps::AppProcess* client = stack.NewSyncApp("client");
  apps::MiniKv kv(server);
  auto [c, s] = stack.kernel->CreateSocketPair();
  const uint64_t cbuf = client->Map(vlen + 64 * kKiB, "cbuf");
  const std::vector<uint8_t> value(vlen, 0x31);

  constexpr int kOps = 12;
  const Cycles server_start = server->ctx().now();
  const Cycles engine_start = stack.service->engine_ctx().now();
  const Cycles engine_blocked_start = stack.service->engine_ctx().blocked_cycles();
  Histogram lat;
  for (int i = 0; i < kOps; ++i) {
    client->ctx().WaitUntil(server->ctx().now());
    const Cycles t0 = client->ctx().now();
    const auto req = apps::MiniKv::BuildSet("k", value);
    client->io().Write(cbuf, req.data(), req.size(), &client->ctx());
    COPIER_CHECK(stack.kernel->Send(*client->proc(), c, cbuf, req.size(), &client->ctx()).ok());
    server->ctx().WaitUntil(client->ctx().now());
    COPIER_CHECK(kv.ProcessOne(s, &server->ctx()).ok());
    if (mode == apps::Mode::kCopier) {
      core::Client* cl = stack.service->ClientById(server->proc()->copier_client_id());
      stack.service->Serve(*cl);
    }
    auto reply = stack.kernel->Recv(*client->proc(), c, cbuf, 5, &client->ctx());
    while (!reply.ok() && mode == apps::Mode::kCopier) {
      core::Client* cl = stack.service->ClientById(server->proc()->copier_client_id());
      stack.service->Serve(*cl);
      reply = stack.kernel->Recv(*client->proc(), c, cbuf, 5, &client->ctx());
    }
    COPIER_CHECK(reply.ok());
    lat.Add(Us(client->ctx().now() - t0));
  }
  stack.service->DrainAll();

  PerRequest result;
  result.app_core_us = Us(server->ctx().now() - server_start) / kOps;
  // Engine *busy* time: clock delta minus idle waits for submissions.
  const Cycles engine_idle =
      stack.service->engine_ctx().blocked_cycles() - engine_blocked_start;
  result.engine_us = Us(stack.service->engine_ctx().now() - engine_start - engine_idle) / kOps;
  result.latency_us = lat.Mean();
  return result;
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Figure 14: Redis SET on a 4-core budget (1 dedicated Copier core)");
  for (size_t vlen : {size_t{8 * kKiB}, size_t{16 * kKiB}}) {
    const PerRequest sync = Measure(t, vlen, apps::Mode::kSync);
    const PerRequest copier = Measure(t, vlen, apps::Mode::kCopier);
    std::printf("\n-- value %s --\n", TextTable::Bytes(vlen).c_str());
    TextTable table({"Redis instances", "BL kops", "Copier kops", "tput delta", "BL lat us",
                     "Copier lat us", "lat delta"});
    for (int n = 1; n <= 4; ++n) {
      // Baseline: n instances over 4 cores (each instance is one process).
      const double bl_kops = std::min(n, 4) / sync.app_core_us * 1e3;
      // Copier: one core dedicated to the service; at most 3 instance cores.
      const int app_cores = std::min(n, 3);
      const double engine_cap = 1.0 / copier.engine_us * 1e3;  // requests/ms the core sustains
      const double copier_kops =
          std::min(app_cores / copier.app_core_us * 1e3, engine_cap);
      table.AddRow({std::to_string(n), TextTable::Num(bl_kops), TextTable::Num(copier_kops),
                    TextTable::Num((copier_kops / bl_kops - 1) * 100, 1) + "%",
                    TextTable::Num(sync.latency_us), TextTable::Num(copier.latency_us),
                    TextTable::Num((1 - copier.latency_us / sync.latency_us) * 100, 1) + "%"});
    }
    table.Print();
  }
}

// Real-threaded utilization: drive a 4-thread service with value-sized copy
// waves and report the aggregated engine counters (TotalStats sums every
// engine's relaxed-atomic stats — safe to read while threads run) plus the
// scheduler's own utilization signature (pick hit rate, steals, wakeups).
void RunThreadedUtilization() {
  PrintBanner("Figure 14 (threaded): Copier-thread utilization counters, 4 threads");
  constexpr size_t kThreads = 4;
  constexpr size_t kInstances = 3;  // the 4-core budget's app cores
  constexpr size_t kSlots = 64;
  constexpr size_t kSlotBytes = 64 * kKiB;  // large SET value: big enough to offload
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = kThreads;
  options.config.max_threads = kThreads;
  core::CopierService service(std::move(options));

  struct Instance {
    simos::Process* proc = nullptr;
    core::Client* client = nullptr;
    std::unique_ptr<lib::CopierLib> lib;
    uint64_t arena = 0;
  };
  std::vector<Instance> instances(kInstances);
  for (auto& inst : instances) {
    inst.proc = kernel.CreateProcess("kv");
    inst.client = service.AttachProcess(inst.proc);
    inst.lib = std::make_unique<lib::CopierLib>(inst.client, &service);
    auto va = inst.proc->mem().MapAnonymous((kSlots + 1) * kSlotBytes, "values", true);
    COPIER_CHECK(va.ok());
    inst.arena = *va;
  }
  service.Start();
  for (auto& inst : instances) {
    for (size_t i = 0; i < kSlots; ++i) {
      inst.lib->amemcpy(inst.arena + (i + 1) * kSlotBytes, inst.arena, kSlotBytes);
    }
  }
  // Mid-run sample, threads still serving: submitted − completed is the DMA
  // work genuinely in flight while rounds are parked (DESIGN.md §9) — the
  // utilization the blocking engine hid inside its end-of-round waits.
  const core::Engine::Stats mid = service.TotalStats();
  const uint64_t inflight_sample =
      mid.dma_bytes_submitted > mid.dma_bytes_completed
          ? mid.dma_bytes_submitted - mid.dma_bytes_completed
          : 0;
  for (auto& inst : instances) {
    COPIER_CHECK_OK(inst.lib->csync_all());
  }
  const core::Engine::Stats totals = service.TotalStats();
  const core::CopierService::SchedStats sched = service.sched_stats();
  service.Stop();

  // "bytes copied" is progress the clients observed; "moved" is what the
  // engines physically shipped (AVX + DMA) and "remapped" what the zero-copy
  // tier eliminated by aliasing (DESIGN.md §11). CoW faults count the lazy
  // materializations the aliases later paid for.
  uint64_t cow_faults = 0;
  for (const auto& inst : instances) {
    cow_faults += inst.proc->mem().cow_faults();
  }
  TextTable engine_table({"tasks done", "bytes copied", "moved", "remapped", "absorbed",
                          "promotions", "cow faults"});
  engine_table.AddRow({TextTable::Num(totals.tasks_completed, 0),
                       TextTable::Bytes(totals.bytes_copied),
                       TextTable::Bytes(totals.avx_bytes + totals.dma_bytes_completed),
                       TextTable::Bytes(totals.remapped_bytes),
                       TextTable::Bytes(totals.bytes_absorbed),
                       TextTable::Num(totals.sync_promotions, 0),
                       TextTable::Num(cow_faults, 0)});
  engine_table.Print();
  TextTable dma_table({"DMA submitted", "DMA completed", "in-flight sample", "parked rounds",
                       "stall cyc", "drain cyc", "reap re-queues"});
  dma_table.AddRow({TextTable::Bytes(totals.dma_bytes_submitted),
                    TextTable::Bytes(totals.dma_bytes_completed),
                    TextTable::Bytes(inflight_sample),
                    TextTable::Num(totals.dma_rounds_parked, 0),
                    TextTable::Num(totals.dma_stall_cycles, 0),
                    TextTable::Num(totals.dma_drain_wait_cycles, 0),
                    TextTable::Num(sched.dma_reap_requeues, 0)});
  dma_table.Print();
  TextTable sched_table({"pick calls", "picks", "hit rate", "steals", "targeted wakes",
                         "broadcast wakes"});
  sched_table.AddRow(
      {TextTable::Num(sched.pick_calls, 0), TextTable::Num(sched.picks, 0),
       TextTable::Num(100.0 * sched.picks /
                          std::max<uint64_t>(1, sched.pick_calls), 1) + "%",
       TextTable::Num(sched.steals, 0), TextTable::Num(sched.targeted_wakeups, 0),
       TextTable::Num(sched.broadcast_wakeups, 0)});
  sched_table.Print();
  // Per-engine utilization (DESIGN.md §10): how evenly the pool shared the
  // load — serving cycles, tasks, cross-engine steals and shared-range
  // dependency traffic, per engine.
  TextTable engine_util_table({"engine", "serve cyc", "tasks", "bytes", "remapped", "steals in",
                               "steals out", "x-probes", "x-settles", "x-defers"});
  for (size_t e = 0; e < service.engine_count(); ++e) {
    const core::CopierService::EngineUtil util = service.engine_util(e);
    engine_util_table.AddRow(
        {std::to_string(e), TextTable::Num(util.stats.serve_cycles, 0),
         TextTable::Num(util.stats.tasks_completed, 0), TextTable::Bytes(util.stats.bytes_copied),
         TextTable::Bytes(util.stats.remapped_bytes),
         TextTable::Num(util.steals_in, 0), TextTable::Num(util.steals_out, 0),
         TextTable::Num(util.stats.cross_dep_probes, 0),
         TextTable::Num(util.stats.cross_dep_settles, 0),
         TextTable::Num(util.stats.cross_dep_defers, 0)});
  }
  engine_util_table.Print();
  std::printf("(low hit rate = threads polling idle shards; the figure's dedicated core "
              "is busy only while clients submit)\n");
}

// Fused-IPC utilization: exercise every reachable rung of the fallback
// ladder (DESIGN.md §12) in one virtual-time run, then print the full
// IpcFuseStats counter group — the "where did my sends go" companion to the
// engine/scheduler tables above. Pool-exhausted and submission-ring
// fallbacks stay 0 in a healthy run and print as such.
void RunIpcFuseLadder(const hw::TimingModel& t) {
  PrintBanner("Fused IPC fallback ladder: posted-send accounting (1 Copier core)");
  BenchStack stack(&t);
  apps::AppProcess* tx = stack.NewApp("ladder-tx");
  apps::AppProcess* rx = stack.NewApp("ladder-rx");
  auto [ts, rs] = stack.kernel->CreateSocketPair();

  constexpr size_t kMsg = 16 * kKiB;
  const uint64_t src = tx->Map(2 * kMsg, "ladder-src", true);
  const uint64_t win = rx->Map(2 * kMsg, "ladder-win", true);
  std::vector<uint8_t> payload(2 * kMsg, 0x5a);
  COPIER_CHECK_OK(tx->proc()->mem().WriteBytes(src, payload.data(), payload.size()));

  auto send = [&](size_t length) {
    size_t sent_total = 0;
    while (sent_total < length) {
      auto sent =
          stack.kernel->Send(*tx->proc(), ts, src + sent_total, length - sent_total, &tx->ctx());
      COPIER_CHECK(sent.ok()) << sent.status().ToString();
      sent_total += *sent;
      stack.service->DrainAll();
    }
  };
  auto reap = [&](core::Descriptor* descriptor, size_t length) {
    COPIER_CHECK_OK(core::WaitDescriptor(*descriptor, 0, length, &rx->ctx(),
                                         [&] { stack.service->DrainAll(); }));
    auto filled = stack.kernel->CompleteRecv(*rx->proc(), rs, &rx->ctx());
    COPIER_CHECK(filled.ok()) << filled.status().ToString();
  };
  auto recv_classic = [&](size_t length) {
    auto got = stack.kernel->Recv(*rx->proc(), rs, win, length, &rx->ctx());
    while (!got.ok()) {
      stack.service->DrainAll();
      got = stack.kernel->Recv(*rx->proc(), rs, win, length, &rx->ctx());
    }
  };

  // (1) No window posted: classic two-step, kFallbackNotPosted.
  send(kMsg);
  recv_classic(kMsg);
  // (2) Single posted window: the fused fast path.
  {
    core::Descriptor d(kMsg);
    simos::RecvOptions ropts;
    ropts.descriptor = &d;
    COPIER_CHECK(stack.kernel->PostRecv(*rx->proc(), rs, win, kMsg, &rx->ctx(), ropts).ok());
    send(kMsg);
    reap(&d, kMsg);
  }
  // (3) Receive ring at depth 2, plus one send spanning both windows — the
  // spill into the second window is a ring rollover, still fused.
  {
    core::Descriptor d1(kMsg);
    core::Descriptor d2(kMsg);
    const std::vector<simos::SimKernel::RecvWindowSpec> specs = {
        {win, kMsg, &d1}, {win + kMsg, kMsg, &d2}};
    COPIER_CHECK(stack.kernel->PostRecvRing(*rx->proc(), rs, specs, &rx->ctx()).ok());
    send(2 * kMsg);
    reap(&d1, kMsg);
    reap(&d2, kMsg);
  }
  // (4) Ring exhausted mid-stream: one window, two messages — the second
  // finds every window consumed and falls back, kFallbackWindowFull.
  {
    core::Descriptor d(kMsg);
    simos::RecvOptions ropts;
    ropts.descriptor = &d;
    COPIER_CHECK(stack.kernel->PostRecv(*rx->proc(), rs, win, kMsg, &rx->ctx(), ropts).ok());
    send(kMsg);
    send(kMsg);
    reap(&d, kMsg);
    recv_classic(kMsg);
  }

  // (5) Proxy-transparent forwarding: a complete FWD frame on a
  // forward-posted window dispatches straight to the KV parcel window
  // (kForwardFused); a split frame makes the rule decline (kFallbackForward)
  // and the message lands app-level in the proxy window instead.
  apps::AppProcess* kv = stack.NewApp("ladder-kv");
  simos::BinderDriver binder(stack.kernel.get());
  std::vector<uint8_t> body(kMsg);
  for (size_t i = 0; i < body.size(); ++i) {
    body[i] = static_cast<uint8_t>(i * 61 + 7);
  }
  const std::vector<uint8_t> fwd_msg = apps::MiniProxy::BuildMessage(1, body);
  const size_t n = fwd_msg.size();
  char via[64];
  const int via_len = std::snprintf(via, sizeof(via), "VIA %d %zu\r\n", 1, body.size());
  const size_t parcel_len = 4 + static_cast<size_t>(via_len) + body.size();
  const uint64_t fsrc = tx->Map(n, "fwd-src", true);
  const uint64_t pwin = rx->Map(n, "fwd-pwin", true);
  const uint64_t kv_win = kv->Map(parcel_len, "fwd-kv-win", true);
  COPIER_CHECK_OK(tx->proc()->mem().WriteBytes(fsrc, fwd_msg.data(), n));
  rs->SetForwardRule(apps::MiniProxy::MakeParcelForwardRule(&binder));
  for (const bool split : {false, true}) {
    core::Descriptor d1(n);
    core::Descriptor d2(parcel_len);
    simos::RecvOptions ropts;
    ropts.descriptor = &d1;
    if (!split) {
      COPIER_CHECK_OK(binder.PostReceive(*kv->proc(), kv_win, parcel_len, &d2, &kv->ctx()));
    }
    COPIER_CHECK(stack.kernel->PostRecv(*rx->proc(), rs, pwin, n, &rx->ctx(), ropts).ok());
    if (split) {
      const size_t half = n / 2;
      auto first = stack.kernel->Send(*tx->proc(), ts, fsrc, half, &tx->ctx());
      COPIER_CHECK(first.ok() && *first == half);
      auto rest = stack.kernel->Send(*tx->proc(), ts, fsrc + half, n - half, &tx->ctx());
      COPIER_CHECK(rest.ok() && *rest == n - half);
      stack.service->DrainAll();
    } else {
      auto sent = stack.kernel->Send(*tx->proc(), ts, fsrc, n, &tx->ctx());
      COPIER_CHECK(sent.ok() && *sent == n);
      stack.service->DrainAll();
    }
    COPIER_CHECK_OK(
        core::WaitDescriptor(d1, 0, n, &rx->ctx(), [&] { stack.service->DrainAll(); }));
    auto reaped = stack.kernel->CompleteRecv(*rx->proc(), rs, &rx->ctx());
    COPIER_CHECK(reaped.ok() && *reaped == n);
    if (!split) {
      COPIER_CHECK_OK(core::WaitDescriptor(d2, 0, parcel_len, &kv->ctx(),
                                           [&] { stack.service->DrainAll(); }));
    }
  }
  rs->SetForwardRule(nullptr);

  const core::CopierService::IpcFuseStats fuse = stack.service->ipc_fuse_stats();
  TextTable table({"fused", "fwd fused", "not posted", "win full", "pool", "subm ring",
                   "fwd declined", "ring posts", "rollovers", "fused rate"});
  table.AddRow({TextTable::Num(fuse.fused, 0), TextTable::Num(fuse.forward_fused, 0),
                TextTable::Num(fuse.fallback_not_posted, 0),
                TextTable::Num(fuse.fallback_window_full, 0),
                TextTable::Num(fuse.fallback_pool_exhausted, 0),
                TextTable::Num(fuse.fallback_ring, 0),
                TextTable::Num(fuse.fallback_forward, 0),
                TextTable::Num(fuse.ring_windows_posted, 0),
                TextTable::Num(fuse.ring_rollovers, 0),
                TextTable::Num(100.0 * fuse.fused_rate(), 1) + "%"});
  table.Print();
  const bool ladder_ok = fuse.fused > 0 && fuse.forward_fused > 0 &&
                         fuse.fallback_not_posted > 0 && fuse.fallback_window_full > 0 &&
                         fuse.fallback_forward > 0 && fuse.ring_windows_posted >= 1 &&
                         fuse.ring_rollovers > 0;
  if (!ladder_ok) {
    std::fprintf(stderr, "MISMATCH: fuse ladder rung unexpectedly empty\n");
  }
  std::printf("(every rung driven on purpose: classic, fused, ring+rollover, full-ring "
              "fallback, forward fused, declined forward) %s\n", ladder_ok ? "OK" : " NO ");
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  copier::bench::RunIpcFuseLadder(copier::bench::SelectTiming(argc, argv));
  copier::bench::RunThreadedUtilization();
  return 0;
}
