// Figure 3: Copy-Use windows — the interval between the completion of a copy
// and the first use of each position of the copied data, compared against the
// time needed to copy that prefix (ERMS). Measured with the AppIo::on_use
// observation hook on sync-mode runs of each app, per the paper's
// timestamp-instrumentation methodology.
// Expected shape: windows of 2–10x the copy time for most positions/apps.
#include "bench/bench_util.h"

#include <map>

#include "src/apps/cipher.h"
#include "src/apps/minikv.h"
#include "src/apps/serde.h"

namespace copier::bench {
namespace {

struct WindowTrace {
  Cycles copy_done = 0;                  // recv return = copy completed (sync)
  std::map<size_t, Cycles> first_use;    // offset -> first-use time
};

// Prints windows at the standard positions for one app's recv buffer trace.
void Report(TextTable* table, const char* app, const WindowTrace& trace,
            const hw::TimingModel& t, size_t total) {
  for (size_t pos : {size_t{0}, total / 4, total / 2, total - 1}) {
    // First use at or after `pos`.
    auto it = trace.first_use.lower_bound(pos);
    if (it == trace.first_use.end()) {
      continue;
    }
    const Cycles window = it->second > trace.copy_done ? it->second - trace.copy_done : 0;
    const Cycles copy_time = t.erms.CopyCycles(pos + 1);
    table->AddRow({app, TextTable::Bytes(AlignUp(pos, 1)),
                   TextTable::Num(Us(window), 3), TextTable::Num(Us(copy_time), 3),
                   TextTable::Num(copy_time > 0 ? static_cast<double>(window) / copy_time : 0,
                                  1) + "x"});
  }
}

template <typename Fn>
WindowTrace Trace(BenchStack& stack, apps::AppProcess* app, uint64_t buf_base, Fn&& scenario) {
  WindowTrace trace;
  app->io().on_use = [&](uint64_t va, size_t n, Cycles now) {
    if (va < buf_base) {
      return;
    }
    const size_t off = va - buf_base;
    for (size_t o = off; o < off + n; o += 512) {  // 512-byte resolution
      trace.first_use.emplace(o, now);  // emplace keeps the FIRST use
    }
    trace.first_use.emplace(off + n - 1, now);
  };
  scenario(&trace);
  return trace;
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Figure 3: Copy-Use window vs copy time (16KiB transfers)");
  TextTable table({"app", "position", "window (us)", "copy time to pos (us)", "ratio"});
  const size_t kMsg = 16 * kKiB;

  {  // Redis SET: value used only at the store copy (late).
    BenchStack stack(&t, {}, apps::Mode::kSync);
    apps::AppProcess* server = stack.NewSyncApp("kv");
    apps::AppProcess* client = stack.NewSyncApp("cl");
    apps::MiniKv kv(server);
    auto [c, s] = stack.kernel->CreateSocketPair();
    const uint64_t cbuf = client->Map(kMsg + kPageSize, "cbuf");
    const auto req = apps::MiniKv::BuildSet("key", std::vector<uint8_t>(kMsg, 1));
    client->io().Write(cbuf, req.data(), req.size(), nullptr);
    COPIER_CHECK(stack.kernel->Send(*client->proc(), c, cbuf, req.size(), nullptr).ok());
    // The KV I/O buffer is the traced region; its base is private, so trace
    // all uses and take recv return as copy-done.
    WindowTrace trace;
    server->io().on_use = [&](uint64_t va, size_t n, Cycles now) {
      static uint64_t base = 0;
      if (base == 0) {
        base = va;  // first header read reveals the io buffer base
      }
      if (va >= base) {
        for (size_t o = va - base; o < va - base + n; o += 512) {
          trace.first_use.emplace(o, now);
        }
      }
    };
    const Cycles before = server->ctx().now();
    COPIER_CHECK(kv.ProcessOne(s, &server->ctx()).ok());
    trace.copy_done = before + t.syscall_entry_cycles +
                      t.CpuCopyCycles(hw::CopyUnitKind::kErms, kMsg);
    Report(&table, "Redis SET (recv->store)", trace, t, kMsg);
  }

  {  // ChaCha20 decrypt: sequential chunk use.
    BenchStack stack(&t, {}, apps::Mode::kSync);
    apps::AppProcess* rx_app = stack.NewSyncApp("rx");
    apps::AppProcess* tx_app = stack.NewSyncApp("tx");
    std::array<uint8_t, 32> key{};
    apps::SecureChannel rxc(rx_app, key);
    apps::SecureChannel txc(tx_app, key);
    auto [tx, rx] = stack.kernel->CreateSocketPair();
    COPIER_CHECK(txc.SendEncrypted(tx, std::vector<uint8_t>(kMsg, 2), nullptr).ok());
    WindowTrace trace;
    uint64_t base = 0;
    rx_app->io().on_use = [&](uint64_t va, size_t n, Cycles now) {
      if (base == 0) {
        base = va;
      }
      if (va >= base) {
        for (size_t o = va - base; o < va - base + n; o += 512) {
          trace.first_use.emplace(o, now);
        }
      }
    };
    const Cycles before = rx_app->ctx().now();
    COPIER_CHECK(rxc.ReadDecrypted(rx, &rx_app->ctx()).ok());
    trace.copy_done =
        before + t.syscall_entry_cycles + t.CpuCopyCycles(hw::CopyUnitKind::kErms, kMsg);
    Report(&table, "ChaCha20 dec. (recv->xor)", trace, t, kMsg);
  }

  {  // Protobuf-like: framing parsed early, payloads used per field.
    BenchStack stack(&t, {}, apps::Mode::kSync);
    apps::AppProcess* app = stack.NewSyncApp("serde");
    apps::AppProcess* sender = stack.NewSyncApp("tx");
    apps::Serde serde(app, kMiB);
    auto [tx, rx] = stack.kernel->CreateSocketPair();
    std::vector<apps::Serde::FieldSpec> fields;
    for (uint32_t tag = 1; tag <= 8; ++tag) {
      fields.push_back({tag, std::vector<uint8_t>(kMsg / 8, 5)});
    }
    const auto wire = apps::Serde::Serialize(fields);
    const uint64_t sbuf = sender->Map(AlignUp(wire.size(), kPageSize), "sbuf");
    sender->io().Write(sbuf, wire.data(), wire.size(), nullptr);
    COPIER_CHECK(stack.kernel->Send(*sender->proc(), tx, sbuf, wire.size(), nullptr).ok());
    WindowTrace trace;
    uint64_t base = 0;
    app->io().on_use = [&](uint64_t va, size_t n, Cycles now) {
      if (base == 0) {
        base = va;
      }
      if (va >= base) {
        for (size_t o = va - base; o < va - base + n; o += 512) {
          trace.first_use.emplace(o, now);
        }
      }
    };
    const Cycles before = app->ctx().now();
    auto parsed = serde.RecvAndParse(rx, &app->ctx());
    COPIER_CHECK(parsed.ok());
    // Touch every field (the app consuming the object).
    for (const auto& field : *parsed) {
      uint8_t sink;
      COPIER_CHECK_OK(app->proc()->mem().ReadBytes(field.va, &sink, 1, &app->ctx()));
    }
    trace.copy_done =
        before + t.syscall_entry_cycles + t.CpuCopyCycles(hw::CopyUnitKind::kErms, wire.size());
    Report(&table, "Protobuf (recv->deser)", trace, t, wire.size());
  }

  table.Print();
  std::printf("(window >= 1x copy time means the async copy fully hides; "
              "the paper reports 2-10x for most rows)\n");
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
