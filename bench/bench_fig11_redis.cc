// Figure 11: MiniKV (Redis-like) GET/SET average latency, P99 and throughput
// across value sizes, vs zIO and UB baselines.
//
// Closed-loop clients over the simulated socket stack. Expected shape
// (paper): Copier cuts SET latency 2.7–43.4% and GET 4.2–42.5%; zIO helps
// GETs up to ~20% and SETs only >= 64 KiB (input-buffer reuse faults); UB
// only <= 4 KiB.
#include "bench/bench_util.h"

#include "src/apps/minikv.h"

namespace copier::bench {
namespace {

constexpr int kClients = 8;
constexpr int kOpsPerClient = 6;

struct KvResult {
  double mean_us = 0;
  double p99_us = 0;
  double kops = 0;  // throughput (virtual time)
};

KvResult RunKv(const hw::TimingModel& t, size_t vlen, bool is_set, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* server = stack.NewApp("kv-server");
  apps::MiniKv kv(server);

  struct ClientState {
    apps::AppProcess* app;
    simos::SimSocket* sock;        // client end
    simos::SimSocket* server_end;  // server end
    uint64_t buf;
  };
  std::vector<ClientState> clients;
  for (int i = 0; i < kClients; ++i) {
    apps::AppProcess* app = stack.NewSyncApp("kv-client-" + std::to_string(i));
    auto [c, s] = stack.kernel->CreateSocketPair();
    clients.push_back({app, c, s, app->Map(vlen + 64 * kKiB, "cbuf")});
  }

  const std::vector<uint8_t> value(vlen, 0x5c);
  Histogram lat;
  Cycles virtual_span_start = 0;
  // Pre-populate for GETs.
  for (int i = 0; i < kClients; ++i) {
    const auto req = apps::MiniKv::BuildSet("key" + std::to_string(i), value);
    clients[i].app->io().Write(clients[i].buf, req.data(), req.size(), nullptr);
    COPIER_CHECK(stack.kernel
                     ->Send(*clients[i].app->proc(), clients[i].sock, clients[i].buf,
                            req.size(), nullptr)
                     .ok());
    COPIER_CHECK(kv.ProcessOne(clients[i].server_end, &server->ctx()).ok());
    stack.service->DrainAll();
    uint8_t sink[16];
    (void)clients[i].app->proc()->mem().ReadBytes(clients[i].buf, sink, 8);
    Cycles d = 0;
    clients[i].sock->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t, size_t) {
      skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
      simos::SimSocket::CompleteCopy(&stack.kernel->skb_pool(), skb);
    });
    clients[i].app->ctx().WaitUntil(server->ctx().now());
  }
  virtual_span_start = server->ctx().now();

  // Closed loop, round-robin over clients.
  for (int round = 0; round < kOpsPerClient; ++round) {
    for (int i = 0; i < kClients; ++i) {
      ClientState& cs = clients[i];
      ExecContext& cctx = cs.app->ctx();
      // Clients and the server share the timeline (closed loop).
      cctx.WaitUntil(server->ctx().now());
      const Cycles start = cctx.now();
      const auto req = is_set ? apps::MiniKv::BuildSet("key" + std::to_string(i), value)
                              : apps::MiniKv::BuildGet("key" + std::to_string(i));
      cs.app->io().Write(cs.buf, req.data(), req.size(), &cctx);
      COPIER_CHECK(
          stack.kernel->Send(*cs.app->proc(), cs.sock, cs.buf, req.size(), &cctx).ok());
      server->ctx().WaitUntil(cctx.now());
      auto processed = kv.ProcessOne(cs.server_end, &server->ctx());
      COPIER_CHECK(processed.ok()) << processed.status().ToString();
      // In Copier mode the service runs on its own core, concurrently.
      if (mode == apps::Mode::kCopier) {
        core::Client* client = stack.service->ClientById(server->proc()->copier_client_id());
        stack.service->Serve(*client);
      }
      // Reply: client blocks until delivery.
      const size_t reply_len = is_set ? 5 : apps::MiniKv::GetReplySize(vlen);
      auto reply =
          stack.kernel->Recv(*cs.app->proc(), cs.sock, cs.buf, reply_len, &cctx);
      if (!reply.ok() && mode == apps::Mode::kCopier) {
        // Reply send still in flight: let the Copier thread finish it.
        core::Client* client = stack.service->ClientById(server->proc()->copier_client_id());
        while (!reply.ok()) {
          stack.service->Serve(*client);
          // Recv itself waits until the skb's delivery time; no extra skew.
          reply = stack.kernel->Recv(*cs.app->proc(), cs.sock, cs.buf, reply_len, &cctx);
        }
      }
      COPIER_CHECK(reply.ok()) << reply.status().ToString();
      lat.Add(Us(cctx.now() - start));
    }
  }
  stack.service->DrainAll();

  KvResult result;
  result.mean_us = lat.Mean();
  result.p99_us = Summarize(lat).p99;
  Cycles span = 0;
  for (auto& cs : clients) {
    span = std::max(span, cs.app->ctx().now() - virtual_span_start);
  }
  span = std::max(span, server->ctx().now() - virtual_span_start);
  result.kops = static_cast<double>(kClients * kOpsPerClient) / Us(span) * 1e3;
  return result;
}

void Run(const hw::TimingModel& t) {
  for (bool is_set : {true, false}) {
    PrintBanner(std::string("Figure 11: Redis ") + (is_set ? "SET" : "GET") +
                " (8 closed-loop clients)");
    TextTable table({"value", "base avg", "Copier avg", "zIO avg", "avg red.", "base p99",
                     "Copier p99", "base kops", "Copier kops", "tput gain"});
    for (size_t vlen : StandardSizes()) {
      const KvResult base = RunKv(t, vlen, is_set, apps::Mode::kSync);
      const KvResult copier = RunKv(t, vlen, is_set, apps::Mode::kCopier);
      const KvResult zio = RunKv(t, vlen, is_set, apps::Mode::kZio);
      table.AddRow({TextTable::Bytes(vlen), TextTable::Num(base.mean_us),
                    TextTable::Num(copier.mean_us), TextTable::Num(zio.mean_us),
                    TextTable::Num((1 - copier.mean_us / base.mean_us) * 100, 1) + "%",
                    TextTable::Num(base.p99_us), TextTable::Num(copier.p99_us),
                    TextTable::Num(base.kops), TextTable::Num(copier.kops),
                    TextTable::Num((copier.kops / base.kops - 1) * 100, 1) + "%"});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
