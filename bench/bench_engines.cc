// Engine-pool sweep (DESIGN.md §10): the same 8-client copy workload runs
// over pools of 1 -> 8 engines, plus the enable_engine_pool=false ablation.
//
// Scaling is measured in virtual time: every engine owns a cycle clock, so
// aggregate throughput is total payload divided by the *busiest* engine's
// busy-cycle delta — exactly the wall-clock of a machine with one core per
// engine. Clients are private (home-engine affinity partitions them), so the
// pool should scale near-linearly; the acceptance floor is 3x aggregate
// GiB/s at 8 engines. A second sweep drives a real-threaded service (one OS
// thread per engine) from 8 app threads to exercise the same topology under
// actual concurrency. Every configuration must land byte-identical images
// (per-client FNV-1a checksums against the 1-engine run).
//
// --json additionally writes BENCH_engines.json for scripts/bench_smoke.sh.
#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <chrono>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

constexpr size_t kClients = 8;
constexpr size_t kSlots = 12;                // copies per client per run
constexpr size_t kSlotBytes = 256 * kKiB;    // virtual-time sweep copy size
constexpr size_t kThreadedSlotBytes = 64 * kKiB;

struct EngineResult {
  size_t engines = 0;
  bool pool_enabled = true;
  uint64_t bytes = 0;
  Cycles busy_max = 0;       // busiest engine's busy cycles: the critical path
  Cycles busy_sum = 0;       // total engine busy cycles (work conservation)
  uint64_t steals = 0;
  uint64_t cross_probes = 0;
  uint64_t checksum = 0;     // combined per-client destination FNV-1a
  double wall_ms = 0;        // host time (threaded sweep only)
};

struct BenchClient {
  simos::Process* proc = nullptr;
  core::Client* client = nullptr;
  std::unique_ptr<lib::CopierLib> lib;
  uint64_t arena = 0;
};

uint64_t Fnv1a(const uint8_t* data, size_t n, uint64_t hash) {
  for (size_t i = 0; i < n; ++i) {
    hash = (hash ^ data[i]) * 1099511628211ull;
  }
  return hash;
}

std::vector<BenchClient> MakeClients(simos::SimKernel& kernel, core::CopierService& service,
                                     size_t slot_bytes) {
  std::vector<BenchClient> clients(kClients);
  for (size_t i = 0; i < kClients; ++i) {
    BenchClient& c = clients[i];
    c.proc = kernel.CreateProcess("eng" + std::to_string(i));
    c.client = service.AttachProcess(c.proc);
    c.lib = std::make_unique<lib::CopierLib>(c.client, &service);
    auto va = c.proc->mem().MapAnonymous((kSlots + 1) * slot_bytes, "arena", true);
    COPIER_CHECK(va.ok());
    c.arena = *va;
    Rng rng(0xE16 + i);  // per-client source image, same in every config
    std::vector<uint8_t> bytes(slot_bytes);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.Next());
    }
    COPIER_CHECK(c.proc->mem().WriteBytes(c.arena, bytes.data(), slot_bytes).ok());
  }
  return clients;
}

uint64_t CombinedChecksum(std::vector<BenchClient>& clients, size_t slot_bytes) {
  uint64_t hash = 1469598103934665603ull;
  std::vector<uint8_t> image(kSlots * slot_bytes);
  for (BenchClient& c : clients) {
    COPIER_CHECK(c.proc->mem().ReadBytes(c.arena + slot_bytes, image.data(), image.size()).ok());
    hash = Fnv1a(image.data(), image.size(), hash);
  }
  return hash;
}

// Virtual-time sweep: manual mode, engines pumped explicitly through each
// client's csync_all (home-engine affinity routes every pump).
EngineResult RunVirtual(const hw::TimingModel& t, size_t engines, bool pool_enabled) {
  core::CopierConfig config;
  config.enable_engine_pool = pool_enabled;
  config.engine_count = engines;
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.config = config;
  options.timing = &t;
  core::CopierService service(std::move(options));
  auto clients = MakeClients(kernel, service, kSlotBytes);

  // Warm-up: populate the ATCache so the sweep measures steady state.
  for (BenchClient& c : clients) {
    c.lib->amemcpy(c.arena + kSlotBytes, c.arena, kSlotBytes);
    COPIER_CHECK_OK(c.lib->csync_all());
  }
  const size_t pool = service.engine_count();
  std::vector<Cycles> starts(pool);
  for (size_t e = 0; e < pool; ++e) {
    starts[e] = service.engine_ctx(e).now();
  }
  for (size_t i = 0; i < kSlots; ++i) {
    for (BenchClient& c : clients) {
      c.lib->amemcpy(c.arena + (i + 1) * kSlotBytes, c.arena, kSlotBytes);
    }
  }
  for (BenchClient& c : clients) {
    COPIER_CHECK_OK(c.lib->csync_all());
  }
  service.DrainAll();

  EngineResult result;
  result.engines = engines;
  result.pool_enabled = pool_enabled;
  result.bytes = static_cast<uint64_t>(kClients) * kSlots * kSlotBytes;
  for (size_t e = 0; e < pool; ++e) {
    const Cycles busy = service.engine_ctx(e).now() - starts[e];
    result.busy_max = std::max(result.busy_max, busy);
    result.busy_sum += busy;
  }
  const core::Engine::Stats stats = service.TotalStats();
  result.cross_probes = stats.cross_dep_probes;
  result.checksum = CombinedChecksum(clients, kSlotBytes);
  return result;
}

// Real-threaded sweep: one OS thread per engine, one driver thread per client.
EngineResult RunThreaded(size_t engines) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.enable_engine_pool = true;
  options.config.engine_count = engines;
  options.config.min_threads = engines;
  options.config.max_threads = engines;
  core::CopierService service(std::move(options));
  auto clients = MakeClients(kernel, service, kThreadedSlotBytes);
  service.Start();

  const size_t pool = service.engine_count();
  std::vector<Cycles> starts(pool);
  std::vector<Cycles> blocked(pool);
  for (size_t e = 0; e < pool; ++e) {
    starts[e] = service.engine_ctx(e).now();
    blocked[e] = service.engine_ctx(e).blocked_cycles();
  }
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> drivers;
  for (BenchClient& c : clients) {
    drivers.emplace_back([&c] {
      for (size_t i = 0; i < kSlots; ++i) {
        c.lib->amemcpy(c.arena + (i + 1) * kThreadedSlotBytes, c.arena, kThreadedSlotBytes);
        if (i % 4 == 3) {
          COPIER_CHECK_OK(c.lib->csync(c.arena + (i + 1) * kThreadedSlotBytes,
                                       kThreadedSlotBytes));
        }
      }
      COPIER_CHECK_OK(c.lib->csync_all());
    });
  }
  for (auto& d : drivers) {
    d.join();
  }
  service.DrainAll();
  const auto wall_end = std::chrono::steady_clock::now();

  EngineResult result;
  result.engines = engines;
  result.bytes = static_cast<uint64_t>(kClients) * kSlots * kThreadedSlotBytes;
  for (size_t e = 0; e < pool; ++e) {
    const Cycles busy = (service.engine_ctx(e).now() - starts[e]) -
                        (service.engine_ctx(e).blocked_cycles() - blocked[e]);
    result.busy_max = std::max(result.busy_max, busy);
    result.busy_sum += busy;
  }
  const core::Engine::Stats stats = service.TotalStats();
  result.cross_probes = stats.cross_dep_probes;
  for (size_t e = 0; e < pool; ++e) {
    const core::CopierService::EngineUtil util = service.engine_util(e);
    result.steals += util.steals_in;
  }
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  service.Stop();
  result.checksum = CombinedChecksum(clients, kThreadedSlotBytes);
  return result;
}

void Run(int argc, char** argv) {
  const hw::TimingModel& t = SelectTiming(argc, argv);
  PrintBanner("Engine-pool sweep: 8 private clients over 1 -> 8 copier engines");
  const std::vector<size_t> engine_counts = {1, 2, 4, 8};

  std::vector<EngineResult> sweep;
  for (size_t engines : engine_counts) {
    sweep.push_back(RunVirtual(t, engines, /*pool_enabled=*/true));
  }
  const EngineResult ablation = RunVirtual(t, 8, /*pool_enabled=*/false);
  const EngineResult& base = sweep.front();

  TextTable table({"config", "agg GiB/s", "vs 1 engine", "busy max us", "busy sum us",
                   "cross probes", "identical"});
  auto add_row = [&](const EngineResult& r, const std::string& label) {
    table.AddRow({label, TextTable::Num(GiBps(r.bytes, r.busy_max)),
                  TextTable::Num(static_cast<double>(base.busy_max) / r.busy_max, 2) + "x",
                  TextTable::Num(Us(r.busy_max)), TextTable::Num(Us(r.busy_sum)),
                  TextTable::Num(r.cross_probes, 0),
                  r.checksum == base.checksum ? "yes" : "NO"});
    if (r.checksum != base.checksum) {
      std::fprintf(stderr, "MISMATCH: %s image differs from the 1-engine run\n",
                   label.c_str());
    }
  };
  for (const EngineResult& r : sweep) {
    add_row(r, std::to_string(r.engines) + " engines");
  }
  add_row(ablation, "pool disabled (ablation)");
  table.Print();
  const double speedup_8x = static_cast<double>(base.busy_max) / sweep.back().busy_max;
  std::printf("\nscaling 1 -> 8 engines: %.2fx aggregate GiB/s (acceptance floor 3x)\n",
              speedup_8x);

  PrintBanner("Engine-pool sweep (threaded): one OS thread per engine");
  std::vector<EngineResult> threaded;
  for (size_t engines : engine_counts) {
    threaded.push_back(RunThreaded(engines));
  }
  const EngineResult& tbase = threaded.front();
  TextTable ttable({"config", "agg GiB/s", "vs 1 engine", "busy max us", "steals",
                    "wall ms", "identical"});
  for (const EngineResult& r : threaded) {
    ttable.AddRow({std::to_string(r.engines) + " engines",
                   TextTable::Num(GiBps(r.bytes, r.busy_max)),
                   TextTable::Num(static_cast<double>(tbase.busy_max) / r.busy_max, 2) + "x",
                   TextTable::Num(Us(r.busy_max)), TextTable::Num(r.steals, 0),
                   TextTable::Num(r.wall_ms), r.checksum == tbase.checksum ? "yes" : "NO"});
    if (r.checksum != tbase.checksum) {
      std::fprintf(stderr, "MISMATCH: %zu-engine threaded image differs\n", r.engines);
    }
  }
  ttable.Print();
  std::printf("(threaded clocks include scheduler jitter; the virtual sweep above is the "
              "scaling evidence)\n");

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_engines.json");
    auto emit = [&](const EngineResult& r, const EngineResult& b) {
      out << "{\"engines\": " << r.engines << ", \"pool_enabled\": "
          << (r.pool_enabled ? "true" : "false")
          << ", \"agg_gibps\": " << GiBps(r.bytes, r.busy_max)
          << ", \"busy_max_cycles\": " << r.busy_max
          << ", \"busy_sum_cycles\": " << r.busy_sum
          << ", \"cross_probes\": " << r.cross_probes
          << ", \"steals\": " << r.steals
          << ", \"speedup_vs_1\": " << static_cast<double>(b.busy_max) / r.busy_max
          << ", \"identical_result\": " << (r.checksum == b.checksum ? "true" : "false")
          << "}";
    };
    out << "{\n  \"bench\": \"engines\",\n  \"clients\": " << kClients
        << ",\n  \"slots\": " << kSlots << ",\n  \"slot_bytes\": " << kSlotBytes
        << ",\n  \"virtual_sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      out << "    ";
      emit(sweep[i], base);
      out << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"ablation_pool_disabled\": ";
    emit(ablation, base);
    out << ",\n  \"threaded_sweep\": [\n";
    for (size_t i = 0; i < threaded.size(); ++i) {
      out << "    ";
      emit(threaded[i], tbase);
      out << (i + 1 < threaded.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"scaling_1_to_8\": " << speedup_8x << "\n}\n";
    std::printf("wrote BENCH_engines.json\n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
