// Remap tier sweep (DESIGN.md §11): bytes physically moved with the
// zero-copy remap tier on vs off, on the two user-space copy shapes the tier
// targets:
//
//   proxy  — the miniproxy organize copy (bench_fig12): equal-length headers
//            make in/out bodies page-co-aligned, the app touches only the
//            header, and the body interior aliases. Moved bytes collapse to
//            the unaligned head+tail page.
//   kv-get — the MiniKv GET reply copy (bench_fig11): store values and the
//            reply landing slot are both page-aligned, so the whole value
//            aliases and moved bytes drop to ~0.
//
// Both arms of each run must produce byte-identical reply images and the
// same kfunc count; a mismatch prints " NO " (bench_smoke.sh greps for it)
// and a MISMATCH line on stderr. Rows of at least 64 KiB gate the ≥90%
// moved-bytes drop. --json writes BENCH_remap.json.
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"

namespace copier::bench {
namespace {

constexpr size_t kHeaderLen = 16;  // "FWD <id> <len>\r\n" — equal in and out

uint64_t Fnv1a(const std::vector<uint8_t>& bytes, uint64_t hash = 1469598103934665603ull) {
  for (uint8_t b : bytes) {
    hash = (hash ^ b) * 1099511628211ull;
  }
  return hash;
}

struct RunResult {
  uint64_t moved = 0;     // avx_bytes + dma_bytes_completed
  uint64_t remapped = 0;  // bytes landed by aliasing
  uint64_t kfuncs = 0;
  uint64_t checksum = 0;
};

core::CopierConfig RemapConfig(bool remap) {
  core::CopierConfig config;
  config.enable_remap_tier = remap;
  return config;
}

RunResult Collect(BenchStack& stack, apps::AppProcess* app, uint64_t reply_start,
                  size_t reply_len) {
  COPIER_CHECK_OK(app->lib()->csync_all());
  std::vector<uint8_t> reply(reply_len);
  COPIER_CHECK_OK(app->proc()->mem().ReadBytes(reply_start, reply.data(), reply_len));
  const core::Engine::Stats stats = stack.service->TotalStats();
  RunResult r;
  r.moved = stats.avx_bytes + stats.dma_bytes_completed;
  r.remapped = stats.remapped_bytes;
  r.kfuncs = stats.kfuncs_run;
  r.checksum = Fnv1a(reply);
  return r;
}

// Miniproxy organize copy: header written by the app, body copied from the
// inbound buffer at the same page offset (equal header lengths).
RunResult RunProxy(const hw::TimingModel& t, bool remap, size_t body) {
  BenchStack stack(&t, RemapConfig(remap));
  apps::AppProcess* app = stack.NewApp("remap-proxy");
  const uint64_t in_buf = app->Map(kHeaderLen + body, "proxy-in", true);
  const uint64_t out_buf = app->Map(kHeaderLen + body, "proxy-out", true);
  std::vector<uint8_t> payload(body);
  for (size_t i = 0; i < body; ++i) {
    payload[i] = static_cast<uint8_t>(i * 131 + body);
  }
  COPIER_CHECK_OK(app->proc()->mem().WriteBytes(in_buf + kHeaderLen, payload.data(), body));
  const char header[kHeaderLen + 1] = "FWD 7 4660    \r\n";
  COPIER_CHECK_OK(app->proc()->mem().WriteBytes(out_buf, header, kHeaderLen));
  app->lib()->amemcpy(out_buf + kHeaderLen, in_buf + kHeaderLen, body);
  return Collect(stack, app, out_buf, kHeaderLen + body);
}

// MiniKv GET reply: page-aligned store value copied to the page-aligned
// reply landing slot, header backing up from the value (minikv.cc layout).
RunResult RunKvGet(const hw::TimingModel& t, bool remap, size_t vlen) {
  BenchStack stack(&t, RemapConfig(remap));
  apps::AppProcess* app = stack.NewApp("remap-kv");
  const uint64_t store = app->Map(vlen, "kv-value", true);
  const uint64_t reply = app->Map(kPageSize + vlen + 2, "kv-reply", true);
  std::vector<uint8_t> value(vlen);
  for (size_t i = 0; i < vlen; ++i) {
    value[i] = static_cast<uint8_t>(i * 29 + 7);
  }
  COPIER_CHECK_OK(app->proc()->mem().WriteBytes(store, value.data(), vlen));
  char header[32];
  const int header_len = std::snprintf(header, sizeof(header), "$%zu\r\n", vlen);
  const uint64_t value_va = reply + kPageSize;
  const uint64_t reply_start = value_va - header_len;
  COPIER_CHECK_OK(app->proc()->mem().WriteBytes(reply_start, header, header_len));
  app->lib()->amemcpy(value_va, store, vlen);
  COPIER_CHECK_OK(app->proc()->mem().WriteBytes(value_va + vlen, "\r\n", 2));
  return Collect(stack, app, reply_start, header_len + vlen + 2);
}

struct Row {
  std::string scenario;
  size_t bytes = 0;
  RunResult copy;   // enable_remap_tier = false
  RunResult remap;  // enable_remap_tier = true
  bool gated = false;

  double drop_pct() const {
    if (copy.moved == 0) {
      return 0;
    }
    return (1.0 - static_cast<double>(remap.moved) / static_cast<double>(copy.moved)) * 100.0;
  }
  bool identical() const {
    return copy.checksum == remap.checksum && copy.kfuncs == remap.kfuncs;
  }
  bool drop_ok() const { return !gated || drop_pct() >= 90.0; }
};

void Run(const hw::TimingModel& t, bool json) {
  PrintBanner("Zero-copy remap tier: bytes physically moved, copy vs remap");
  std::vector<Row> rows;
  for (size_t bytes : {16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB}) {
    Row row;
    row.scenario = "proxy";
    row.bytes = bytes;
    row.copy = RunProxy(t, false, bytes);
    row.remap = RunProxy(t, true, bytes);
    row.gated = bytes >= 64 * kKiB;
    rows.push_back(row);
  }
  for (size_t bytes : {64 * kKiB, 256 * kKiB, 1 * kMiB}) {
    Row row;
    row.scenario = "kv-get";
    row.bytes = bytes;
    row.copy = RunKvGet(t, false, bytes);
    row.remap = RunKvGet(t, true, bytes);
    row.gated = true;
    rows.push_back(row);
  }

  TextTable table({"scenario", "size KiB", "moved(copy)", "moved(remap)", "remapped", "drop",
                   "identical"});
  bool all_ok = true;
  for (const Row& row : rows) {
    const bool ok = row.identical() && row.drop_ok();
    all_ok &= ok;
    if (!row.identical()) {
      std::fprintf(stderr, "MISMATCH: %s/%zu images or kfuncs differ across the ablation\n",
                   row.scenario.c_str(), row.bytes);
    }
    if (!row.drop_ok()) {
      std::fprintf(stderr, "MISMATCH: %s/%zu moved-bytes drop %.1f%% < 90%%\n",
                   row.scenario.c_str(), row.bytes, row.drop_pct());
    }
    table.AddRow({row.scenario, std::to_string(row.bytes / kKiB),
                  std::to_string(row.copy.moved), std::to_string(row.remap.moved),
                  std::to_string(row.remap.remapped),
                  "-" + TextTable::Num(row.drop_pct(), 1) + "%", ok ? "yes" : " NO "});
  }
  table.Print();

  if (json) {
    std::ofstream out("BENCH_remap.json");
    out << "{\n  \"bench\": \"remap\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"scenario\": \"" << row.scenario << "\", \"bytes\": " << row.bytes
          << ", \"moved_copy\": " << row.copy.moved << ", \"moved_remap\": " << row.remap.moved
          << ", \"remapped_bytes\": " << row.remap.remapped << ", \"drop_pct\": " << row.drop_pct()
          << ", \"gated\": " << (row.gated ? "true" : "false")
          << ", \"identical_result\": " << (row.identical() ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  COPIER_CHECK(all_ok);
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv),
                     copier::bench::HasFlag(argc, argv, "--json"));
  return 0;
}
