// Ablation (DESIGN.md §4.5): copy-length CFS + copier cgroup shares.
// Demonstrates (a) fairness between a small-copy and a large-copy client
// under contention, and (b) proportional service under copier.shares.
#include "bench/bench_util.h"

#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

void Run(const hw::TimingModel& t) {
  PrintBanner("Copier scheduler: copy-length CFS fairness and cgroup shares");

  // Two clients in cgroups with 4:1 shares, both saturating the service.
  core::CopierConfig config;
  config.copy_slice_bytes = 64 * kKiB;
  BenchStack stack(&t, config);
  core::Cgroup* gold = stack.service->CreateCgroup("gold", 4096);
  core::Cgroup* bronze = stack.service->CreateCgroup("bronze", 1024);

  apps::AppProcess* a = stack.NewSyncApp("gold-app");
  apps::AppProcess* b = stack.NewSyncApp("bronze-app");
  core::Client* ca = stack.service->AttachProcess(a->proc(), gold);
  core::Client* cb = stack.service->AttachProcess(b->proc(), bronze);
  lib::CopierLib la(ca, stack.service.get());
  lib::CopierLib lb(cb, stack.service.get());

  const size_t n = 64 * kKiB;
  const int tasks = 32;
  const uint64_t sa = a->Map(n * tasks, "sa");
  const uint64_t da = a->Map(n * tasks, "da");
  const uint64_t sb = b->Map(n * tasks, "sb");
  const uint64_t db = b->Map(n * tasks, "db");
  for (int i = 0; i < tasks; ++i) {
    la.amemcpy(da + i * n, sa + i * n, n);
    lb.amemcpy(db + i * n, sb + i * n, n);
  }

  TextTable table({"rounds served", "gold bytes", "bronze bytes", "ratio (target 4.0)"});
  for (int round = 1; round <= 24; ++round) {
    stack.service->RunOnce();
    if (round % 8 == 0) {
      table.AddRow({std::to_string(round),
                    TextTable::Bytes(gold->total_bytes()),
                    TextTable::Bytes(bronze->total_bytes()),
                    TextTable::Num(bronze->total_bytes() > 0
                                       ? static_cast<double>(gold->total_bytes()) /
                                             bronze->total_bytes()
                                       : 0,
                                   2)});
    }
  }
  table.Print();
  stack.service->DrainAll();

  std::printf("\nWithin-cgroup CFS: clients are picked by minimum total copy length, so a\n"
              "small-copy client is never starved behind a bulk client (see\n"
              "Scheduler.CopyLengthFairnessAcrossClients in tests/engine_test.cc).\n");
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
