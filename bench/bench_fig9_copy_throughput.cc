// Figure 9: throughput of Copier handling Copy Tasks vs the kernel's copy
// (ERMS) and userspace copy (AVX2), with 0% and 75% buffer repetition, plus
// the ATCache ablation.
//
// Paper numbers to reproduce in shape: Copier up to ~158% over ERMS (~55% at
// 4 KiB) and ~38% over AVX2 (33% at 4 KiB) with no repetition; with 75%
// repetition +63%/+32%, ATCache contributing 2–11%.
#include "bench/bench_util.h"

#include "src/common/rng.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

// Virtual time for Copier to drain `count` copies of `size`, with the given
// buffer-repetition rate. `stats_out` (optional) receives the engine
// counters of the run — the DMA dispatch picture behind the throughput.
Cycles CopierDrainTime(const hw::TimingModel& timing, size_t size, int count,
                       double repetition, bool atcache, uint64_t seed,
                       core::Engine::Stats* stats_out = nullptr) {
  core::CopierConfig config;
  config.enable_atcache = atcache;
  BenchStack stack(&timing, config);
  apps::AppProcess* app = stack.NewApp("copybench");
  // Buffer pool: with repetition r, a copy reuses a recent buffer pair with
  // probability r; otherwise it uses a fresh one.
  constexpr size_t kPool = 8;
  std::vector<uint64_t> srcs;
  std::vector<uint64_t> dsts;
  const size_t fresh_needed = static_cast<size_t>(count * (1.0 - repetition)) + kPool + 1;
  for (size_t i = 0; i < fresh_needed; ++i) {
    srcs.push_back(app->Map(size, "src"));
    dsts.push_back(app->Map(size, "dst"));
  }
  stack.service->engine().atcache().Attach(app->proc()->mem());

  Rng rng(seed);
  size_t fresh_cursor = kPool;
  // Submit in waves of 8 with the service polling in between (as the
  // concurrent Copier thread would), so the engine never idles waiting for
  // submissions and the pending list stays realistic.
  core::Client* client = stack.service->ClientById(app->proc()->copier_client_id());
  for (int i = 0; i < count; ++i) {
    size_t index;
    if (rng.NextDouble() < repetition || fresh_cursor >= srcs.size()) {
      index = rng.Below(kPool);  // recycled buffer (ATCache hit territory)
    } else {
      index = fresh_cursor++;
    }
    app->lib()->amemcpy(dsts[index], srcs[index], size, nullptr);
    if (i % 8 == 7) {
      stack.service->Serve(*client);
    }
  }
  stack.service->DrainAll();
  if (stats_out != nullptr) {
    *stats_out = stack.service->TotalStats();
  }
  return stack.service->engine_ctx().now();
}

void Run(const hw::TimingModel& t) {
  constexpr int kCount = 64;
  PrintBanner("Figure 9: copy throughput (GiB/s), Copier (AVX+DMA) vs ERMS vs AVX2");
  for (double repetition : {0.0, 0.75}) {
    std::printf("\n-- buffer repetition %.0f%% --\n", repetition * 100);
    TextTable table({"size", "ERMS", "AVX2", "Copier", "Copier/noATC", "vs ERMS", "vs AVX2",
                     "ATCache gain"});
    core::Engine::Stats dma_totals;
    for (size_t size : StandardSizes()) {
      const uint64_t bytes = static_cast<uint64_t>(size) * kCount;
      const double erms = GiBps(bytes, t.erms.CopyCycles(size) * kCount);
      const double avx = GiBps(bytes, t.avx.CopyCycles(size) * kCount);
      core::Engine::Stats stats;
      const double copier =
          GiBps(bytes, CopierDrainTime(t, size, kCount, repetition, true, 42, &stats));
      const double copier_noatc =
          GiBps(bytes, CopierDrainTime(t, size, kCount, repetition, false, 42));
      dma_totals.dma_bytes_completed += stats.dma_bytes_completed;
      dma_totals.dma_rounds_parked += stats.dma_rounds_parked;
      dma_totals.dma_ring_full_fallbacks += stats.dma_ring_full_fallbacks;
      dma_totals.dma_stall_cycles += stats.dma_stall_cycles;
      dma_totals.dma_drain_wait_cycles += stats.dma_drain_wait_cycles;
      table.AddRow({TextTable::Bytes(size), TextTable::Num(erms), TextTable::Num(avx),
                    TextTable::Num(copier), TextTable::Num(copier_noatc),
                    TextTable::Num((copier / erms - 1) * 100, 0) + "%",
                    TextTable::Num((copier / avx - 1) * 100, 0) + "%",
                    TextTable::Num((copier / copier_noatc - 1) * 100, 1) + "%"});
    }
    table.Print();
    std::printf("Copier DMA dispatch: %s offloaded, %llu parked rounds, %llu ring-full "
                "fallbacks, %llu stall cyc, %llu drain cyc\n",
                TextTable::Bytes(dma_totals.dma_bytes_completed).c_str(),
                static_cast<unsigned long long>(dma_totals.dma_rounds_parked),
                static_cast<unsigned long long>(dma_totals.dma_ring_full_fallbacks),
                static_cast<unsigned long long>(dma_totals.dma_stall_cycles),
                static_cast<unsigned long long>(dma_totals.dma_drain_wait_cycles));
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
