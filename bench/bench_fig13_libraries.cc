// Figure 13: frameworks and libraries.
//   (a) Protobuf-like serde: recv + deserialize latency (expected −4..−33%)
//   (b) OpenSSL-like SSL_read (ChaCha20): latency (expected −1.4..−8.4%,
//       flat above the 16 KiB record cap)
//   (c) Avcodec-like decode pipeline (expected −3..−10% per frame; Copier
//       runs under scenario-driven polling on the phone)
#include "bench/bench_util.h"

#include "src/apps/avcodec.h"
#include "src/apps/cipher.h"
#include "src/apps/serde.h"

namespace copier::bench {
namespace {

double SerdeLatencyUs(const hw::TimingModel& t, size_t msg_bytes, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* app = mode == apps::Mode::kCopier ? stack.NewApp("serde")
                                                      : stack.NewSyncApp("serde");
  apps::AppProcess* sender = stack.NewSyncApp("sender");
  apps::Serde serde(app, std::max<size_t>(msg_bytes * 2, kMiB));
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  // Message: 8 length-delimited fields.
  std::vector<apps::Serde::FieldSpec> fields;
  for (uint32_t tag = 1; tag <= 8; ++tag) {
    fields.push_back({tag, std::vector<uint8_t>(msg_bytes / 8, static_cast<uint8_t>(tag))});
  }
  const auto wire = apps::Serde::Serialize(fields);
  const uint64_t sbuf = sender->Map(AlignUp(wire.size(), kPageSize), "sbuf");
  sender->io().Write(sbuf, wire.data(), wire.size(), nullptr);

  Histogram lat;
  core::Client* client = mode == apps::Mode::kCopier
                             ? stack.service->ClientById(app->proc()->copier_client_id())
                             : nullptr;
  for (int i = 0; i < 10; ++i) {
    COPIER_CHECK(stack.kernel->Send(*sender->proc(), tx, sbuf, wire.size(), nullptr).ok());
    const Cycles start = app->ctx().now();
    auto parsed = serde.RecvAndParse(rx, &app->ctx());
    COPIER_CHECK(parsed.ok()) << parsed.status().ToString();
    // Deserialization done; for a fair end point, the object must be usable:
    // sync the last field (the app would touch it next).
    if (mode == apps::Mode::kCopier) {
      COPIER_CHECK_OK(app->lib()->csync(parsed->back().va, parsed->back().length,
                                        &app->ctx()));
    }
    lat.Add(Us(app->ctx().now() - start));
    if (client != nullptr) {
      stack.service->DrainAll();
    }
  }
  return lat.Mean();
}

double CipherLatencyUs(const hw::TimingModel& t, size_t msg_bytes, apps::Mode mode) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* rx_app = mode == apps::Mode::kCopier ? stack.NewApp("ssl-rx")
                                                         : stack.NewSyncApp("ssl-rx");
  apps::AppProcess* tx_app = stack.NewSyncApp("ssl-tx");
  std::array<uint8_t, 32> key{};
  key[3] = 7;
  apps::SecureChannel rx_chan(rx_app, key);
  apps::SecureChannel tx_chan(tx_app, key);
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const std::vector<uint8_t> plaintext(msg_bytes, 0x61);
  Histogram lat;
  for (int i = 0; i < 8; ++i) {
    COPIER_CHECK(tx_chan.SendEncrypted(tx, plaintext, nullptr).ok());
    const Cycles start = rx_app->ctx().now();
    size_t got = 0;
    while (got < msg_bytes) {  // records are capped at 16 KiB
      auto result = rx_chan.ReadDecrypted(rx, &rx_app->ctx());
      COPIER_CHECK(result.ok()) << result.status().ToString();
      got += result->length;
    }
    lat.Add(Us(rx_app->ctx().now() - start));
    stack.service->DrainAll();
  }
  return lat.Mean();
}

double AvcodecFrameUs(const hw::TimingModel& t, apps::Mode mode, double* copier_busy_frac) {
  BenchStack stack(&t, {}, mode);
  apps::AppProcess* app =
      mode == apps::Mode::kCopier ? stack.NewApp("avc") : stack.NewSyncApp("avc");
  apps::Avcodec codec(app, 512 * kKiB);  // ~a 720p NV12 slice per frame
  const std::vector<uint8_t> bitstream(64 * kKiB, 0x35);

  // Scenario-driven polling (§5.3): the service is active only inside the
  // playback scenario.
  stack.service->ScenarioBegin();
  Histogram lat;
  const Cycles engine_start = stack.service->engine_ctx().now();
  for (int frame = 0; frame < 10; ++frame) {
    const auto stats = codec.DecodeFrame(bitstream, &app->ctx());
    lat.Add(Us(stats.total_cycles));
  }
  stack.service->DrainAll();
  stack.service->ScenarioEnd();
  if (copier_busy_frac != nullptr && app->ctx().now() > 0) {
    *copier_busy_frac = static_cast<double>(stack.service->engine_ctx().now() - engine_start) /
                        app->ctx().now();
  }
  return lat.Mean();
}

void Run(const hw::TimingModel& t) {
  {
    PrintBanner("Figure 13-a: Protobuf-like recv+deserialize latency (us)");
    TextTable table({"message", "baseline", "Copier", "reduction"});
    for (size_t size : StandardSizes()) {
      const double base = SerdeLatencyUs(t, size, apps::Mode::kSync);
      const double copier = SerdeLatencyUs(t, size, apps::Mode::kCopier);
      table.AddRow({TextTable::Bytes(size), TextTable::Num(base), TextTable::Num(copier),
                    TextTable::Num((1 - copier / base) * 100, 1) + "%"});
    }
    table.Print();
  }
  {
    PrintBanner("Figure 13-b: OpenSSL-like SSL_read (ChaCha20) latency (us)");
    TextTable table({"message", "baseline", "Copier", "reduction"});
    for (size_t size : {size_t{1 * kKiB}, size_t{4 * kKiB}, size_t{16 * kKiB},
                        size_t{32 * kKiB}, size_t{64 * kKiB}}) {
      const double base = CipherLatencyUs(t, size, apps::Mode::kSync);
      const double copier = CipherLatencyUs(t, size, apps::Mode::kCopier);
      table.AddRow({TextTable::Bytes(size), TextTable::Num(base), TextTable::Num(copier),
                    TextTable::Num((1 - copier / base) * 100, 1) + "%"});
    }
    table.Print();
  }
  {
    PrintBanner("Figure 13-c: Avcodec-like decode latency per frame (us, scenario-driven)");
    double busy = 0;
    const double base = AvcodecFrameUs(t, apps::Mode::kSync, nullptr);
    const double copier = AvcodecFrameUs(t, apps::Mode::kCopier, &busy);
    TextTable table({"metric", "baseline", "Copier", "delta"});
    table.AddRow({"frame latency (us)", TextTable::Num(base), TextTable::Num(copier),
                  "-" + TextTable::Num((1 - copier / base) * 100, 1) + "%"});
    table.AddRow({"copier-core busy fraction (energy proxy)", "0", TextTable::Num(busy, 3),
                  "+" + TextTable::Num(busy * 100, 2) + "% of a core"});
    table.Print();
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
