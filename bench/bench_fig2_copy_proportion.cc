// Figure 2: cycle proportion of copy across apps. Measured by running each
// app twice in sync mode — once with the real timing model and once with a
// model whose copy costs are zeroed — and attributing the difference to copy
// (kernel-mode + user-mode), exactly the quantity perf attributes in the
// paper's methodology.
// Expected shape: copy is a large share for KV/proxy at big values (up to
// ~66% in the paper), moderate for cipher/serde, smaller for deflate.
#include "bench/bench_util.h"

#include "src/apps/cipher.h"
#include "src/apps/deflate.h"
#include "src/apps/minikv.h"
#include "src/apps/miniproxy.h"
#include "src/apps/pngish.h"
#include "src/apps/serde.h"

namespace copier::bench {
namespace {

hw::TimingModel ZeroCopyCosts(const hw::TimingModel& base) {
  hw::TimingModel m = base;
  const double kInf = 1e12;  // effectively free copies
  for (auto* curve : {&m.avx, &m.erms, &m.dma}) {
    curve->startup_cycles = 0;
    for (auto& point : curve->points) {
      point.bytes_per_cycle = kInf;
    }
  }
  return m;
}

// Each runner returns app-context cycles consumed for the scenario.
using Runner = Cycles (*)(const hw::TimingModel&, size_t);

Cycles RunKv(const hw::TimingModel& t, size_t vlen) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* server = stack.NewSyncApp("kv");
  apps::AppProcess* client = stack.NewSyncApp("cl");
  apps::MiniKv kv(server);
  auto [c, s] = stack.kernel->CreateSocketPair();
  const uint64_t cbuf = client->Map(vlen + 64 * kKiB, "cbuf");
  const std::vector<uint8_t> value(vlen, 1);
  for (int i = 0; i < 6; ++i) {
    const auto req = i % 2 == 0 ? apps::MiniKv::BuildSet("k", value)
                                : apps::MiniKv::BuildGet("k");
    client->io().Write(cbuf, req.data(), req.size(), nullptr);
    COPIER_CHECK(stack.kernel->Send(*client->proc(), c, cbuf, req.size(), nullptr).ok());
    COPIER_CHECK(kv.ProcessOne(s, &server->ctx()).ok());
    uint8_t sink[8];
    Cycles d = 0;
    c->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t, size_t) {
      skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
      simos::SimSocket::CompleteCopy(&stack.kernel->skb_pool(), skb);
    });
    (void)sink;
  }
  return server->ctx().now();
}

Cycles RunProxy(const hw::TimingModel& t, size_t body) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* proxy = stack.NewSyncApp("proxy");
  apps::AppProcess* client = stack.NewSyncApp("cl");
  apps::MiniProxy mp(proxy);
  auto [cs, in] = stack.kernel->CreateSocketPair();
  auto [out, up] = stack.kernel->CreateSocketPair();
  const uint64_t cbuf = client->Map(body + kPageSize, "cbuf");
  const auto msg = apps::MiniProxy::BuildMessage(1, std::vector<uint8_t>(body, 2));
  client->io().Write(cbuf, msg.data(), msg.size(), nullptr);
  for (int i = 0; i < 6; ++i) {
    COPIER_CHECK(stack.kernel->Send(*client->proc(), cs, cbuf, msg.size(), nullptr).ok());
    COPIER_CHECK(mp.ForwardOne(in, out, &proxy->ctx()).ok());
    Cycles d = 0;
    up->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t, size_t) {
      skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
      simos::SimSocket::CompleteCopy(&stack.kernel->skb_pool(), skb);
    });
  }
  return proxy->ctx().now();
}

Cycles RunCipher(const hw::TimingModel& t, size_t bytes) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* rx_app = stack.NewSyncApp("rx");
  apps::AppProcess* tx_app = stack.NewSyncApp("tx");
  std::array<uint8_t, 32> key{};
  apps::SecureChannel rxc(rx_app, key);
  apps::SecureChannel txc(tx_app, key);
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  const std::vector<uint8_t> plain(bytes, 3);
  for (int i = 0; i < 4; ++i) {
    COPIER_CHECK(txc.SendEncrypted(tx, plain, nullptr).ok());
    size_t got = 0;
    while (got < bytes) {
      auto result = rxc.ReadDecrypted(rx, &rx_app->ctx());
      COPIER_CHECK(result.ok());
      got += result->length;
    }
  }
  return rx_app->ctx().now();
}

Cycles RunSerde(const hw::TimingModel& t, size_t bytes) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* app = stack.NewSyncApp("serde");
  apps::AppProcess* sender = stack.NewSyncApp("tx");
  apps::Serde serde(app, std::max<size_t>(bytes * 2, kMiB));
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  std::vector<apps::Serde::FieldSpec> fields;
  for (uint32_t tag = 1; tag <= 8; ++tag) {
    fields.push_back({tag, std::vector<uint8_t>(bytes / 8, 4)});
  }
  const auto wire = apps::Serde::Serialize(fields);
  const uint64_t sbuf = sender->Map(AlignUp(wire.size(), kPageSize), "sbuf");
  sender->io().Write(sbuf, wire.data(), wire.size(), nullptr);
  for (int i = 0; i < 4; ++i) {
    COPIER_CHECK(stack.kernel->Send(*sender->proc(), tx, sbuf, wire.size(), nullptr).ok());
    COPIER_CHECK(serde.RecvAndParse(rx, &app->ctx()).ok());
  }
  return app->ctx().now();
}

Cycles RunPngish(const hw::TimingModel& t, size_t bytes) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* app = stack.NewSyncApp("png");
  simos::SimFs fs(stack.kernel.get());
  apps::Pngish png(app, &fs);
  const uint32_t stride = 192;  // 64px * 3bpp
  const uint32_t rows = static_cast<uint32_t>(bytes / stride);
  fs.CreateFile("img", apps::Pngish::EncodeImage(64, rows, 3, 5));
  for (int i = 0; i < 4; ++i) {
    COPIER_CHECK(png.DecodeFile("img", &app->ctx()).ok());
  }
  return app->ctx().now();
}

Cycles RunDeflate(const hw::TimingModel& t, size_t bytes) {
  BenchStack stack(&t, {}, apps::Mode::kSync);
  apps::AppProcess* app = stack.NewSyncApp("deflate");
  apps::Deflate deflate(app);
  std::vector<uint8_t> input;
  Rng rng(1);
  while (input.size() < bytes) {
    const char* words[] = {"alpha", "beta", "gamma", "delta"};
    const std::string w = words[rng.Below(4)];
    input.insert(input.end(), w.begin(), w.end());
  }
  deflate.Compress(input, &app->ctx());
  return app->ctx().now();
}

void Row(TextTable* table, const char* name, Runner runner, const hw::TimingModel& t,
         size_t small, size_t large) {
  const hw::TimingModel zero = ZeroCopyCosts(t);
  const double small_frac =
      1.0 - static_cast<double>(runner(zero, small)) / runner(t, small);
  const double large_frac =
      1.0 - static_cast<double>(runner(zero, large)) / runner(t, large);
  table->AddRow({name, TextTable::Num(small_frac * 100, 1) + "%",
                 TextTable::Num(large_frac * 100, 1) + "%"});
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Figure 2-a: cycle proportion of copy (16KiB vs 256KiB workloads)");
  TextTable table({"app", "16KiB", "256KiB"});
  Row(&table, "MiniKV SET/GET (Redis)", &RunKv, t, 16 * kKiB, 256 * kKiB);
  Row(&table, "MiniProxy (Nginx/TinyProxy)", &RunProxy, t, 16 * kKiB, 256 * kKiB);
  Row(&table, "SecureChannel recv (OpenSSL)", &RunCipher, t, 16 * kKiB, 256 * kKiB);
  Row(&table, "Serde recv (Protobuf)", &RunSerde, t, 16 * kKiB, 256 * kKiB);
  Row(&table, "Deflate (zlib)", &RunDeflate, t, 16 * kKiB, 256 * kKiB);
  Row(&table, "Pngish read+decode (libpng)", &RunPngish, t, 16 * kKiB, 256 * kKiB);
  table.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
