// Fused IPC sweep (DESIGN.md §12): posted-receive transfers with the fused
// single-hop dispatch on vs the enable_ipc_fuse=false two-step ablation, on
// three shapes:
//
//   socket   — loopback stream send into the receiver's posted window,
//              4 KiB → 4 MiB. Fused sends skip the skb staging hop (and
//              remap-alias when page-congruent); the ablation stages into
//              skbs and drains into the same window.
//   binder   — one transaction landing in the server's posted window,
//              64 KiB → 1 MiB (the transaction-buffer ceiling).
//   pipeline — proxy→KV over Binder: the client ships a MiniKv SET command
//              over a posted socket window to the proxy, which forwards it
//              to the KV server over a posted-receive parcel.
//
// Both arms of every row must produce byte-identical receiver images and the
// same KFUNC count; a mismatch prints " NO " (bench_smoke.sh greps for it)
// and a MISMATCH line on stderr. Gated rows must also hit their minimum
// fused-vs-two-step speedup: ≥1.4x on the 1 MiB socket row, ≥1.5x on every
// ≥64 KiB binder parcel. --json writes BENCH_ipc_fuse.json.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>

#include "bench/bench_util.h"
#include "src/apps/minikv.h"
#include "src/apps/miniproxy.h"
#include "src/apps/parcel.h"
#include "src/simos/binder.h"

namespace copier::bench {
namespace {

uint64_t Fnv1a(const std::vector<uint8_t>& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (uint8_t b : bytes) {
    hash = (hash ^ b) * 1099511628211ull;
  }
  return hash;
}

core::CopierConfig FuseConfig(bool fuse) {
  core::CopierConfig config;
  config.enable_ipc_fuse = fuse;
  return config;
}

void FillPattern(simos::AddressSpace& mem, uint64_t va, size_t n, uint32_t seed) {
  std::vector<uint8_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] = static_cast<uint8_t>(i * 131 + seed);
  }
  COPIER_CHECK_OK(mem.WriteBytes(va, bytes.data(), n));
}

std::vector<uint8_t> ReadAll(simos::AddressSpace& mem, uint64_t va, size_t n) {
  std::vector<uint8_t> bytes(n);
  COPIER_CHECK_OK(mem.ReadBytes(va, bytes.data(), n));
  return bytes;
}

struct RunResult {
  double us = 0;              // receiver-observed transfer latency
  uint64_t checksum = 0;      // FNV-1a over the receiver image
  uint64_t kfuncs = 0;
  uint64_t moved = 0;         // avx_bytes + dma_bytes_completed
  uint64_t fused_bytes = 0;   // Engine::Stats::fused_ipc_bytes
  core::CopierService::IpcFuseStats fuse;  // full fallback ladder
};

void FillStats(RunResult* r, BenchStack& stack) {
  const core::Engine::Stats stats = stack.service->TotalStats();
  r->kfuncs = stats.kfuncs_run;
  r->moved = stats.avx_bytes + stats.dma_bytes_completed;
  r->fused_bytes = stats.fused_ipc_bytes;
  r->fuse = stack.service->ipc_fuse_stats();
}

// Loopback stream into a posted window: latency from the post to the window
// descriptor covering every payload byte.
RunResult RunSocket(const hw::TimingModel& t, bool fuse, size_t n) {
  BenchStack stack(&t, FuseConfig(fuse));
  apps::AppProcess* sender = stack.NewApp("fuse-tx");
  apps::AppProcess* receiver = stack.NewApp("fuse-rx");
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const uint64_t src = sender->Map(n, "src", true);
  const uint64_t win = receiver->Map(n, "win", true);
  FillPattern(sender->proc()->mem(), src, n, 17);

  receiver->ctx().WaitUntil(sender->ctx().now());
  sender->ctx().WaitUntil(receiver->ctx().now());
  const Cycles start = receiver->ctx().now();

  core::Descriptor descriptor(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &descriptor;
  auto staged = stack.kernel->PostRecv(*receiver->proc(), rx, win, n, &receiver->ctx(), ropts);
  COPIER_CHECK(staged.ok()) << staged.status().ToString();

  size_t sent_total = 0;
  while (sent_total < n) {
    auto sent = stack.kernel->Send(*sender->proc(), tx, src + sent_total, n - sent_total,
                                   &sender->ctx());
    COPIER_CHECK(sent.ok()) << sent.status().ToString();
    sent_total += *sent;
    stack.service->DrainAll();
  }
  COPIER_CHECK_OK(core::WaitDescriptor(descriptor, 0, n, &receiver->ctx(),
                                       [&] { stack.service->DrainAll(); }));
  auto filled = stack.kernel->CompleteRecv(*receiver->proc(), rx, &receiver->ctx());
  COPIER_CHECK(filled.ok() && *filled == n);

  RunResult r;
  r.us = Us(receiver->ctx().now() - start);
  r.checksum = Fnv1a(ReadAll(receiver->proc()->mem(), win, n));
  FillStats(&r, stack);
  return r;
}

// Pipelined loopback stream at queue depth `depth` (multi-window receive
// ring, DESIGN.md §12): the receiver posts a `depth`-deep ring in ONE trap,
// the sender bursts `depth` equal-size messages back-to-back without waiting,
// and the receiver reaps the ring in FIFO order — two rounds, so reap/re-post
// churn is covered. On the fused arm every burst message must land fused in
// its own window (the qd4 row gates fused_rate >= 0.90); the ablation stages
// each message through skbs into the same ring.
RunResult RunSocketPipelined(const hw::TimingModel& t, bool fuse, size_t depth, size_t n) {
  BenchStack stack(&t, FuseConfig(fuse));
  apps::AppProcess* sender = stack.NewApp("pipe-tx");
  apps::AppProcess* receiver = stack.NewApp("pipe-rx");
  auto [tx, rx] = stack.kernel->CreateSocketPair();

  const uint64_t src = sender->Map(depth * n, "src", true);
  const uint64_t win = receiver->Map(depth * n, "win", true);
  std::vector<std::unique_ptr<core::Descriptor>> descriptors;
  for (size_t i = 0; i < depth; ++i) {
    descriptors.push_back(std::make_unique<core::Descriptor>(n));
  }

  receiver->ctx().WaitUntil(sender->ctx().now());
  sender->ctx().WaitUntil(receiver->ctx().now());
  const Cycles start = receiver->ctx().now();

  std::vector<uint8_t> image;
  for (size_t round = 0; round < 2; ++round) {
    for (size_t i = 0; i < depth; ++i) {
      FillPattern(sender->proc()->mem(), src + i * n, n,
                  static_cast<uint32_t>(round * depth + i + 3));
    }
    std::vector<simos::SimKernel::RecvWindowSpec> specs;
    for (size_t i = 0; i < depth; ++i) {
      descriptors[i]->Reset(n);
      specs.push_back({win + i * n, n, descriptors[i].get()});
    }
    auto staged = stack.kernel->PostRecvRing(*receiver->proc(), rx, specs, &receiver->ctx());
    COPIER_CHECK(staged.ok()) << staged.status().ToString();
    for (size_t i = 0; i < depth; ++i) {
      size_t sent_total = 0;
      while (sent_total < n) {
        auto sent = stack.kernel->Send(*sender->proc(), tx, src + i * n + sent_total,
                                       n - sent_total, &sender->ctx());
        COPIER_CHECK(sent.ok()) << sent.status().ToString();
        sent_total += *sent;
        if (sent_total < n) {
          stack.service->DrainAll();
        }
      }
    }
    for (size_t i = 0; i < depth; ++i) {
      COPIER_CHECK_OK(core::WaitDescriptor(*descriptors[i], 0, n, &receiver->ctx(),
                                           [&] { stack.service->DrainAll(); }));
      auto filled = stack.kernel->CompleteRecv(*receiver->proc(), rx, &receiver->ctx());
      COPIER_CHECK(filled.ok() && *filled == n);
      const std::vector<uint8_t> bytes = ReadAll(receiver->proc()->mem(), win + i * n, n);
      image.insert(image.end(), bytes.begin(), bytes.end());
    }
  }

  RunResult r;
  r.us = Us(receiver->ctx().now() - start);
  r.checksum = Fnv1a(image);
  FillStats(&r, stack);
  return r;
}

// One Binder transaction into the server's posted window: latency from the
// client's transact to the descriptor covering the whole message.
RunResult RunBinder(const hw::TimingModel& t, bool fuse, size_t n) {
  BenchStack stack(&t, FuseConfig(fuse));
  apps::AppProcess* client = stack.NewApp("fuse-client");
  apps::AppProcess* server = stack.NewApp("fuse-server");
  simos::BinderDriver binder(stack.kernel.get());

  const uint64_t msg = client->Map(n, "msg", true);
  const uint64_t win = server->Map(n, "win", true);
  FillPattern(client->proc()->mem(), msg, n, 29);

  server->ctx().WaitUntil(client->ctx().now());
  client->ctx().WaitUntil(server->ctx().now());
  const Cycles start = server->ctx().now();

  core::Descriptor descriptor(n);
  COPIER_CHECK_OK(binder.PostReceive(*server->proc(), win, n, &descriptor, &server->ctx()));
  auto txn = binder.Transact(*client->proc(), msg, n, &client->ctx());
  COPIER_CHECK(txn.ok()) << txn.status().ToString();
  COPIER_CHECK(txn->in_window);
  COPIER_CHECK_OK(core::WaitDescriptor(descriptor, 0, n, &server->ctx(),
                                       [&] { stack.service->DrainAll(); }));
  binder.Release(txn->id);

  RunResult r;
  r.us = Us(server->ctx().now() - start);
  r.checksum = Fnv1a(ReadAll(server->proc()->mem(), win, n));
  FillStats(&r, stack);
  return r;
}

// Proxy→KV over Binder: SET command over a posted socket window to the
// proxy, re-framed and forwarded to the KV server over a posted parcel.
RunResult RunPipeline(const hw::TimingModel& t, bool fuse, size_t vlen) {
  BenchStack stack(&t, FuseConfig(fuse));
  apps::AppProcess* client = stack.NewApp("kv-client");
  apps::AppProcess* proxy = stack.NewApp("proxy");
  apps::AppProcess* kv = stack.NewApp("kv");
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  simos::BinderDriver binder(stack.kernel.get());
  apps::BinderParcelChannel channel(&binder, proxy, kv, /*posted_receive=*/true);

  std::vector<uint8_t> value(vlen);
  for (size_t i = 0; i < vlen; ++i) {
    value[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  const std::vector<uint8_t> set_cmd = apps::MiniKv::BuildSet("bench-key", value);
  const size_t n = set_cmd.size();
  const uint64_t src = client->Map(n, "cmd", true);
  COPIER_CHECK_OK(client->proc()->mem().WriteBytes(src, set_cmd.data(), n));
  const uint64_t win = proxy->Map(n, "proxy-win", true);

  proxy->ctx().WaitUntil(client->ctx().now());
  client->ctx().WaitUntil(proxy->ctx().now());
  kv->ctx().WaitUntil(proxy->ctx().now());
  const Cycles start = proxy->ctx().now();

  core::Descriptor d1(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &d1;
  auto staged = stack.kernel->PostRecv(*proxy->proc(), rx, win, n, &proxy->ctx(), ropts);
  COPIER_CHECK(staged.ok()) << staged.status().ToString();
  size_t sent_total = 0;
  while (sent_total < n) {
    auto sent = stack.kernel->Send(*client->proc(), tx, src + sent_total, n - sent_total,
                                   &client->ctx());
    COPIER_CHECK(sent.ok()) << sent.status().ToString();
    sent_total += *sent;
    stack.service->DrainAll();
  }
  COPIER_CHECK_OK(core::WaitDescriptor(d1, 0, n, &proxy->ctx(),
                                       [&] { stack.service->DrainAll(); }));
  auto filled = stack.kernel->CompleteRecv(*proxy->proc(), rx, &proxy->ctx());
  COPIER_CHECK(filled.ok() && *filled == n);

  // The proxy re-frames the command for the Binder hop (app-level read).
  std::string cmd(n, '\0');
  COPIER_CHECK_OK(proxy->proc()->mem().ReadBytes(win, cmd.data(), n, &proxy->ctx()));
  auto result = channel.Call({cmd}, &proxy->ctx(), &kv->ctx());
  COPIER_CHECK(result.ok()) << result.status().ToString();
  COPIER_CHECK(result->size() == 1 && (*result)[0].size() == n);

  RunResult r;
  r.us = Us(proxy->ctx().now() - start);
  r.checksum = Fnv1a(std::vector<uint8_t>((*result)[0].begin(), (*result)[0].end()));
  COPIER_CHECK(r.checksum == Fnv1a(set_cmd));  // value survived both hops
  FillStats(&r, stack);
  return r;
}

// End-to-end forwarded pipeline (proxy-transparent forwarding, DESIGN.md
// §12): client → proxy socket → KV binder window. On the fused arm the
// proxy's forward rule re-frames "FWD ..." as the "VIA ..." parcel in the
// kernel and ONE fused task splices header + payload straight into the KV
// server's posted parcel window — the payload never enters the proxy's
// address space. The ablation receives, parses, marshals and transacts
// app-level, exactly what the rule replaces. Both arms must produce a
// byte-identical KV window image and the same KFUNC count.
RunResult RunForwardPipeline(const hw::TimingModel& t, bool fuse, size_t body_len) {
  BenchStack stack(&t, FuseConfig(fuse));
  apps::AppProcess* client = stack.NewApp("fwd-client");
  apps::AppProcess* proxy = stack.NewApp("fwd-proxy");
  apps::AppProcess* kv = stack.NewApp("fwd-kv");
  auto [tx, rx] = stack.kernel->CreateSocketPair();
  simos::BinderDriver binder(stack.kernel.get());

  std::vector<uint8_t> body(body_len);
  for (size_t i = 0; i < body_len; ++i) {
    body[i] = static_cast<uint8_t>(i * 61 + 7);
  }
  const int upstream = 7;
  const std::vector<uint8_t> fwd_msg = apps::MiniProxy::BuildMessage(upstream, body);
  const size_t n = fwd_msg.size();
  char via[64];
  const int via_len = std::snprintf(via, sizeof(via), "VIA %d %zu\r\n", upstream, body_len);
  const size_t parcel_len = 4 + static_cast<size_t>(via_len) + body_len;

  const uint64_t src = client->Map(n, "fwd-msg", true);
  COPIER_CHECK_OK(client->proc()->mem().WriteBytes(src, fwd_msg.data(), n));
  const uint64_t pwin = proxy->Map(n, "proxy-win", true);
  const uint64_t kv_win = kv->Map(parcel_len, "kv-win", true);
  const uint64_t marshal = proxy->Map(parcel_len, "marshal", true);  // ablation only

  proxy->ctx().WaitUntil(client->ctx().now());
  client->ctx().WaitUntil(proxy->ctx().now());
  kv->ctx().WaitUntil(proxy->ctx().now());
  const Cycles start = kv->ctx().now();

  core::Descriptor d2(parcel_len);
  COPIER_CHECK_OK(binder.PostReceive(*kv->proc(), kv_win, parcel_len, &d2, &kv->ctx()));
  core::Descriptor d1(n);
  simos::RecvOptions ropts;
  ropts.descriptor = &d1;
  rx->SetForwardRule(apps::MiniProxy::MakeParcelForwardRule(&binder));
  auto staged = stack.kernel->PostRecv(*proxy->proc(), rx, pwin, n, &proxy->ctx(), ropts);
  COPIER_CHECK(staged.ok()) << staged.status().ToString();

  size_t sent_total = 0;
  while (sent_total < n) {
    auto sent = stack.kernel->Send(*client->proc(), tx, src + sent_total, n - sent_total,
                                   &client->ctx());
    COPIER_CHECK(sent.ok()) << sent.status().ToString();
    sent_total += *sent;
    if (sent_total < n) {
      stack.service->DrainAll();
    }
  }
  // The proxy's window settles on both arms: staged bytes mark it directly,
  // a dispatched forward marks it when the payload lands downstream.
  COPIER_CHECK_OK(
      core::WaitDescriptor(d1, 0, n, &proxy->ctx(), [&] { stack.service->DrainAll(); }));
  auto reaped = stack.kernel->CompleteRecv(*proxy->proc(), rx, &proxy->ctx());
  COPIER_CHECK(reaped.ok() && *reaped == n);

  const bool forwarded = stack.service->ipc_fuse_stats().forward_fused > 0;
  if (!forwarded) {
    // App-level path (the ablation, or any declined forward): parse the
    // header, rewrite it, marshal the parcel, and transact to the KV server —
    // the payload crosses the proxy twice more.
    std::vector<uint8_t> msg(n);
    COPIER_CHECK_OK(proxy->proc()->mem().ReadBytes(pwin, msg.data(), n, &proxy->ctx()));
    proxy->io().Compute(&proxy->ctx(), 64, apps::MiniProxy::kHeaderParseCpb,
                        apps::MiniProxy::kRouteFixed);
    const uint8_t* body_start =
        static_cast<const uint8_t*>(std::memchr(msg.data(), '\n', 64)) + 1;
    apps::ParcelWriter writer;
    std::string item(via, via + via_len);
    item.append(body_start, body_start + body_len);
    writer.WriteString(item);
    COPIER_CHECK(writer.bytes().size() == parcel_len);
    proxy->io().Write(marshal, writer.bytes().data(), parcel_len, &proxy->ctx());
    auto txn = binder.Transact(*proxy->proc(), marshal, parcel_len, &proxy->ctx());
    COPIER_CHECK(txn.ok()) << txn.status().ToString();
    COPIER_CHECK(txn->in_window);
    COPIER_CHECK_OK(core::WaitDescriptor(d2, 0, parcel_len, &kv->ctx(),
                                         [&] { stack.service->DrainAll(); }));
    binder.Release(txn->id);
  } else {
    COPIER_CHECK_OK(core::WaitDescriptor(d2, 0, parcel_len, &kv->ctx(),
                                         [&] { stack.service->DrainAll(); }));
  }
  kv->ctx().WaitUntil(proxy->ctx().now());

  RunResult r;
  r.us = Us(kv->ctx().now() - start);
  r.checksum = Fnv1a(ReadAll(kv->proc()->mem(), kv_win, parcel_len));
  FillStats(&r, stack);
  return r;
}

struct Row {
  std::string scenario;
  size_t bytes = 0;
  RunResult off;  // enable_ipc_fuse = false
  RunResult on;   // enable_ipc_fuse = true
  double min_speedup = 0;     // 0 = latency not gated
  double min_fused_rate = 0;  // 0 = fused rate not gated

  double speedup() const { return on.us > 0 ? off.us / on.us : 0; }
  bool identical() const { return off.checksum == on.checksum && off.kfuncs == on.kfuncs; }
  bool speed_ok() const { return min_speedup == 0 || speedup() >= min_speedup; }
  bool rate_ok() const {
    return min_fused_rate == 0 || on.fuse.fused_rate() >= min_fused_rate;
  }
};

void Run(const hw::TimingModel& t, bool json) {
  PrintBanner("Fused IPC: posted-window transfer latency, two-step vs fused (us)");
  std::vector<Row> rows;
  for (size_t bytes : {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB}) {
    Row row;
    row.scenario = "socket";
    row.bytes = bytes;
    row.off = RunSocket(t, false, bytes);
    row.on = RunSocket(t, true, bytes);
    row.min_speedup = bytes == 1 * kMiB ? 1.4 : 0;
    rows.push_back(row);
  }
  for (size_t bytes : {64 * kKiB, 256 * kKiB, 1 * kMiB}) {
    Row row;
    row.scenario = "binder";
    row.bytes = bytes;
    row.off = RunBinder(t, false, bytes);
    row.on = RunBinder(t, true, bytes);
    row.min_speedup = 1.5;
    rows.push_back(row);
  }
  for (size_t bytes : {64 * kKiB, 256 * kKiB}) {
    Row row;
    row.scenario = "proxy-kv";
    row.bytes = bytes;
    row.off = RunPipeline(t, false, bytes);
    row.on = RunPipeline(t, true, bytes);
    rows.push_back(row);
  }
  // Pipelined senders over the multi-window receive ring: the qd4 1 MiB row
  // is the ISSUE-gated shape (every burst message fused, rate >= 0.90).
  for (size_t bytes : {64 * kKiB, 1 * kMiB}) {
    Row row;
    row.scenario = "socket-qd4";
    row.bytes = bytes;
    row.off = RunSocketPipelined(t, false, 4, bytes);
    row.on = RunSocketPipelined(t, true, 4, bytes);
    row.min_fused_rate = 0.90;
    row.min_speedup = bytes == 1 * kMiB ? 1.4 : 0;
    rows.push_back(row);
  }
  // Proxy-transparent forwarding: header-splice fused dispatch vs the full
  // app-level receive+marshal+transact chain. Body sizes keep the rewritten
  // parcel under the 1 MiB binder transaction ceiling on the ablation arm.
  for (size_t bytes : {64 * kKiB, 256 * kKiB, 1 * kMiB - 4 * kKiB}) {
    Row row;
    row.scenario = "pipeline-e2e";
    row.bytes = bytes;
    row.off = RunForwardPipeline(t, false, bytes);
    row.on = RunForwardPipeline(t, true, bytes);
    row.min_speedup = bytes >= 256 * kKiB ? 1.8 : 0;
    rows.push_back(row);
  }

  TextTable table({"scenario", "size KiB", "two-step", "fused", "speedup", "fused rate",
                   "moved(2step)", "moved(fused)", "ok"});
  bool all_ok = true;
  for (const Row& row : rows) {
    const bool ok = row.identical() && row.speed_ok() && row.rate_ok();
    all_ok &= ok;
    if (!row.identical()) {
      std::fprintf(stderr, "MISMATCH: %s/%zu images or kfuncs differ across the ablation\n",
                   row.scenario.c_str(), row.bytes);
    }
    if (!row.speed_ok()) {
      std::fprintf(stderr, "MISMATCH: %s/%zu speedup %.2fx < %.2fx\n", row.scenario.c_str(),
                   row.bytes, row.speedup(), row.min_speedup);
    }
    if (!row.rate_ok()) {
      std::fprintf(stderr, "MISMATCH: %s/%zu fused rate %.2f < %.2f\n", row.scenario.c_str(),
                   row.bytes, row.on.fuse.fused_rate(), row.min_fused_rate);
    }
    table.AddRow({row.scenario, std::to_string(row.bytes / kKiB), TextTable::Num(row.off.us),
                  TextTable::Num(row.on.us), TextTable::Num(row.speedup(), 2) + "x",
                  TextTable::Num(row.on.fuse.fused_rate(), 2),
                  std::to_string(row.off.moved), std::to_string(row.on.moved),
                  ok ? "yes" : " NO "});
  }
  table.Print();

  if (json) {
    std::ofstream out("BENCH_ipc_fuse.json");
    out << "{\n  \"bench\": \"ipc_fuse\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      out << "    {\"scenario\": \"" << row.scenario << "\", \"bytes\": " << row.bytes
          << ", \"us_two_step\": " << row.off.us << ", \"us_fused\": " << row.on.us
          << ", \"speedup\": " << row.speedup() << ", \"min_speedup\": " << row.min_speedup
          << ", \"moved_two_step\": " << row.off.moved << ", \"moved_fused\": " << row.on.moved
          << ", \"fused_ipc_bytes\": " << row.on.fused_bytes
          << ", \"fused_rate\": " << row.on.fuse.fused_rate()
          << ", \"min_fused_rate\": " << row.min_fused_rate
          << ", \"forward_fused\": " << row.on.fuse.forward_fused
          << ", \"ring_windows_posted\": " << row.on.fuse.ring_windows_posted
          << ", \"ring_rollovers\": " << row.on.fuse.ring_rollovers
          << ", \"identical_result\": " << (row.identical() ? "true" : "false") << "}"
          << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  COPIER_CHECK(all_ok);
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv),
                     copier::bench::HasFlag(argc, argv, "--json"));
  return 0;
}
