// §4.6 break-even sizes: the copy size above which Copier beats sync copy
// (a) with a sufficient Copy-Use window (async pays submit+csync only), and
// (b) without a window (hardware advantage only). Paper: ~0.3 KiB kernel /
// ~0.5 KiB userspace with windows; ~2 KiB kernel / ~12 KiB userspace without.
#include "bench/bench_util.h"

namespace copier::bench {
namespace {

size_t FirstSize(const std::function<bool(size_t)>& wins) {
  for (size_t size = 64; size <= 1 * kMiB; size += 64) {
    if (wins(size)) {
      return size;
    }
  }
  return 0;
}

void Run(const hw::TimingModel& t) {
  PrintBanner("Break-even copy sizes (§4.6)");
  TextTable table({"case", "break-even", "paper"});

  // With a sufficient window, the app pays submit + csync-check; sync pays
  // the copy inline.
  const Cycles async_user = t.task_submit_cycles + t.csync_check_cycles;
  table.AddRow({"kernel copy, window (vs ERMS)",
                TextTable::Bytes(FirstSize([&](size_t n) {
                  return t.CpuCopyCycles(hw::CopyUnitKind::kErms, n) > async_user;
                })),
                "~0.3KiB"});
  table.AddRow({"user copy, window (vs AVX2)",
                TextTable::Bytes(FirstSize([&](size_t n) {
                  return t.CpuCopyCycles(hw::CopyUnitKind::kAvx, n) >
                         async_user + t.csync_submit_cycles;
                })),
                "~0.5KiB"});

  // Without a window the app waits for Copier end-to-end: submit + service
  // pickup + piggybacked copy must beat the inline copy.
  auto copier_copy_cycles = [&](size_t n) -> Cycles {
    // Balanced split across AVX and DMA (the dispatcher's steady state).
    const double avx_rate = t.avx.BytesPerCycle(n);
    const double dma_rate = t.dma.BytesPerCycle(n);
    const double combined = n >= t.dma_min_subtask_bytes ? avx_rate + dma_rate : avx_rate;
    return static_cast<Cycles>(t.task_submit_cycles + t.poll_iteration_cycles +
                               t.dma_submit_cycles + n / combined + t.csync_submit_cycles);
  };
  table.AddRow({"kernel copy, no window (vs ERMS)",
                TextTable::Bytes(FirstSize([&](size_t n) {
                  return t.CpuCopyCycles(hw::CopyUnitKind::kErms, n) > copier_copy_cycles(n);
                })),
                "~2KiB"});
  table.AddRow({"user copy, no window (vs AVX2)",
                TextTable::Bytes(FirstSize([&](size_t n) {
                  return t.CpuCopyCycles(hw::CopyUnitKind::kAvx, n) > copier_copy_cycles(n);
                })),
                "~12KiB"});
  table.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
