// §6.3.5 microarchitectural impact: a simple cache-pollution model. A large
// inline copy streams 2N bytes through the top-level caches, evicting part of
// the app's hot working set; the app then pays extra misses on its next
// compute phase. With Copier the copy runs on the service core, leaving the
// app's cache intact (prefetch-friendly sequential reads cover the copied
// data itself). Reported as the CPI change of copy-irrelevant code, as in the
// paper (expected: 4–16% for SETs, 6–9% for GETs, 4–64 KiB values).
#include "bench/bench_util.h"

namespace copier::bench {
namespace {

struct CacheModel {
  size_t l2_bytes = 256 * kKiB;       // per-core L2 (Broadwell)
  size_t hot_set_bytes = 96 * kKiB;   // app's hot working set
  double base_cpi = 0.9;              // copy-irrelevant code, warm cache
  double miss_penalty_cycles = 45;    // L2 miss -> LLC
  double line = 64;

  // CPI of the app's compute phase after an inline copy of `n` bytes.
  double CpiAfterCopy(size_t copy_bytes, bool copy_on_app_core) const {
    if (!copy_on_app_core) {
      return base_cpi;  // Copier: app cache undisturbed
    }
    // Fraction of the hot set evicted by streaming 2n bytes through L2.
    const double pressure =
        std::min(1.0, static_cast<double>(2 * copy_bytes) / l2_bytes);
    const double evicted = hot_set_bytes * pressure;
    // Extra misses amortized over the compute phase (~4 instructions/byte of
    // hot data re-touched).
    const double extra_miss_cycles = evicted / line * miss_penalty_cycles;
    const double instructions = hot_set_bytes * 4.0;
    return base_cpi + extra_miss_cycles / instructions * 4.0;
  }
};

void Run(const hw::TimingModel&) {
  PrintBanner("§6.3.5: CPI of copy-irrelevant code (cache-pollution model)");
  CacheModel model;
  TextTable table({"value size", "baseline CPI", "Copier CPI", "CPI reduction"});
  for (size_t vlen : {size_t{4 * kKiB}, size_t{16 * kKiB}, size_t{64 * kKiB}}) {
    // A SET touches ~2 copies of the value inline (recv + store).
    const double base = model.CpiAfterCopy(2 * vlen, true);
    const double copier = model.CpiAfterCopy(2 * vlen, false);
    table.AddRow({TextTable::Bytes(vlen), TextTable::Num(base, 3),
                  TextTable::Num(copier, 3),
                  TextTable::Num((1 - copier / base) * 100, 1) + "%"});
  }
  table.Print();
  std::printf("(paper: 4-16%% CPI reduction for SETs, 6-9%% for GETs)\n");
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
