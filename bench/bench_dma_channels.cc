// Channel sweep: non-blocking multi-channel DMA (DESIGN.md §9).
//
// The same steady-state large-copy loop runs over 1→8 DMA channels with
// asynchronous completion (rounds park their in-flight batches and the
// reaper lands them on later serves), plus the blocking single-channel
// baseline (the pre-§9 engine: every round ends in a busy-wait on the DMA
// tail). Reported per configuration:
//   * throughput (GiB/s of virtual time) and speedup over 1 async channel,
//   * dma_stall_cycles — end-of-round blocking waits (~0 when async),
//   * dma_drain_wait_cycles — clock advanced to completions at barriers,
//   * parked rounds and ring-full CPU fallbacks,
//   * an FNV-1a checksum of the destination, compared against the blocking
//     baseline: the async multi-channel engine must land identical bytes.
//
// --json additionally writes BENCH_dma_channels.json for scripts/bench_smoke.sh.
#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/rng.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

struct ChannelResult {
  size_t channels = 0;
  bool async = true;
  Cycles cycles = 0;
  uint64_t bytes = 0;
  uint64_t stall_cycles = 0;
  uint64_t drain_wait_cycles = 0;
  uint64_t parked_rounds = 0;
  uint64_t ring_full_fallbacks = 0;
  uint64_t dma_bytes = 0;
  uint64_t avx_bytes = 0;
  uint64_t checksum = 0;
};

ChannelResult RunChannels(const hw::TimingModel& t, size_t channels, bool async) {
  core::CopierConfig config;
  config.dma_channel_count = channels;
  config.enable_async_dma_completion = async;
  BenchStack stack(&t, config);
  apps::AppProcess* app = stack.NewApp("dmabench");
  const size_t kCopy = 1 * kMiB;
  constexpr int kIters = 24;
  const uint64_t src = app->Map(kCopy, "src");
  const uint64_t dst = app->Map(kCopy, "dst");
  {
    Rng rng(0xD31A);  // same image in every configuration
    std::vector<uint8_t> bytes(kCopy);
    for (auto& b : bytes) {
      b = static_cast<uint8_t>(rng.Next());
    }
    COPIER_CHECK(app->proc()->mem().WriteBytes(src, bytes.data(), kCopy).ok());
  }
  // Warm-up pass: populate the ATCache so the sweep measures the steady
  // state, not first-touch page walks (cold translations cost ~240 cycles a
  // page and mask the channel scaling).
  app->lib()->amemcpy(dst, src, kCopy, &app->ctx());
  COPIER_CHECK_OK(app->lib()->csync(dst, kCopy, &app->ctx()));

  const Cycles start = stack.service->engine_ctx().now();
  const core::Engine::Stats before = stack.service->TotalStats();
  for (int i = 0; i < kIters; ++i) {
    app->lib()->amemcpy(dst, src, kCopy, &app->ctx());
    COPIER_CHECK_OK(app->lib()->csync(dst, kCopy, &app->ctx()));
  }
  stack.service->DrainAll();

  ChannelResult result;
  result.channels = channels;
  result.async = async;
  result.cycles = stack.service->engine_ctx().now() - start;
  result.bytes = static_cast<uint64_t>(kCopy) * kIters;
  const core::Engine::Stats after = stack.service->TotalStats();
  result.stall_cycles = after.dma_stall_cycles - before.dma_stall_cycles;
  result.drain_wait_cycles = after.dma_drain_wait_cycles - before.dma_drain_wait_cycles;
  result.parked_rounds = after.dma_rounds_parked - before.dma_rounds_parked;
  result.ring_full_fallbacks = after.dma_ring_full_fallbacks - before.dma_ring_full_fallbacks;
  result.dma_bytes = after.dma_bytes_completed - before.dma_bytes_completed;
  result.avx_bytes = after.avx_bytes - before.avx_bytes;

  uint64_t hash = 1469598103934665603ull;  // FNV-1a over the destination
  std::vector<uint8_t> image(kCopy);
  if (!app->proc()->mem().ReadBytes(dst, image.data(), image.size()).ok()) {
    std::fprintf(stderr, "destination readback failed at %zu channels\n", channels);
  }
  for (uint8_t byte : image) {
    hash = (hash ^ byte) * 1099511628211ull;
  }
  result.checksum = hash;
  return result;
}

void Run(int argc, char** argv) {
  const hw::TimingModel& t = SelectTiming(argc, argv);
  PrintBanner("DMA channel sweep: async parked rounds vs blocking single channel");
  const std::vector<size_t> channel_counts = {1, 2, 4, 8};

  const ChannelResult blocking = RunChannels(t, 1, /*async=*/false);
  std::vector<ChannelResult> sweep;
  for (size_t channels : channel_counts) {
    sweep.push_back(RunChannels(t, channels, /*async=*/true));
  }
  const ChannelResult& base = sweep.front();  // 1 async channel

  TextTable table({"config", "GiB/s", "vs 1ch", "stall cyc", "drain cyc", "parked",
                   "fallbacks", "DMA share", "identical"});
  auto add_row = [&](const ChannelResult& r, const char* label) {
    const double gibps = GiBps(r.bytes, r.cycles);
    table.AddRow({label, TextTable::Num(gibps),
                  TextTable::Num(static_cast<double>(base.cycles) / r.cycles, 2) + "x",
                  TextTable::Num(r.stall_cycles, 0), TextTable::Num(r.drain_wait_cycles, 0),
                  TextTable::Num(r.parked_rounds, 0),
                  TextTable::Num(r.ring_full_fallbacks, 0),
                  TextTable::Num(100.0 * r.dma_bytes / (r.dma_bytes + r.avx_bytes), 0) + "%",
                  r.checksum == blocking.checksum ? "yes" : "NO"});
    if (r.checksum != blocking.checksum) {
      std::fprintf(stderr, "MISMATCH: %s image differs from the blocking baseline\n", label);
    }
  };
  add_row(blocking, "1 ch, blocking");
  const std::vector<std::string> labels = {"1 ch, async", "2 ch, async", "4 ch, async",
                                           "8 ch, async"};
  for (size_t i = 0; i < sweep.size(); ++i) {
    add_row(sweep[i], labels[i].c_str());
  }
  table.Print();
  std::printf("\nscaling 1 -> 4 async channels: %.2fx (acceptance floor 1.5x)\n",
              static_cast<double>(base.cycles) / sweep[2].cycles);

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_dma_channels.json");
    auto emit = [&](const ChannelResult& r) {
      out << "{\"channels\": " << r.channels << ", \"async\": " << (r.async ? "true" : "false")
          << ", \"gibps\": " << GiBps(r.bytes, r.cycles) << ", \"cycles\": " << r.cycles
          << ", \"stall_cycles\": " << r.stall_cycles
          << ", \"drain_wait_cycles\": " << r.drain_wait_cycles
          << ", \"parked_rounds\": " << r.parked_rounds
          << ", \"ring_full_fallbacks\": " << r.ring_full_fallbacks
          << ", \"dma_bytes\": " << r.dma_bytes << ", \"avx_bytes\": " << r.avx_bytes
          << ", \"speedup_vs_1ch_async\": "
          << static_cast<double>(base.cycles) / r.cycles << ", \"identical_result\": "
          << (r.checksum == blocking.checksum ? "true" : "false") << "}";
    };
    out << "{\n  \"bench\": \"dma_channels\",\n  \"copy_bytes\": " << (1 * kMiB)
        << ",\n  \"iters\": 24,\n  \"blocking_baseline\": ";
    emit(blocking);
    out << ",\n  \"sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      out << "    ";
      emit(sweep[i]);
      out << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"scaling_1_to_4\": "
        << static_cast<double>(base.cycles) / sweep[2].cycles << "\n}\n";
    std::printf("wrote BENCH_dma_channels.json\n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
