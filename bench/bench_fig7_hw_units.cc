// Figure 7-a: standalone throughput of the copy units by transfer size.
// Expected shape: AVX2 dominates everywhere; DMA is poor for small copies
// (submission overhead + low ramp) and approaches its peak from ~4 KiB;
// ERMS sits below AVX, catching up at large sizes.
//
// Also reported: aggregate DMA bandwidth over the channel pool (a transfer
// chunked across N independent channels, DESIGN.md §9) and an engine-driven
// ring-backpressure demo showing dma_ring_full_fallbacks — submissions that
// bounced off a full descriptor ring and ran on the CPU instead.
#include "bench/bench_util.h"

#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

void Run(const hw::TimingModel& t) {
  PrintBanner("Figure 7-a: copy-unit throughput by size (GiB/s, modeled at 2.9 GHz)");
  TextTable table({"size", "AVX2", "ERMS", "DMA (incl. submit)", "DMA/AVX"});
  for (size_t size = 256; size <= 1 * kMiB; size *= 2) {
    const Cycles avx = t.avx.CopyCycles(size);
    const Cycles erms = t.erms.CopyCycles(size);
    const Cycles dma = t.dma_submit_cycles + t.DmaTransferCycles(size);
    table.AddRow({TextTable::Bytes(size), TextTable::Num(GiBps(size, avx)),
                  TextTable::Num(GiBps(size, erms)), TextTable::Num(GiBps(size, dma)),
                  TextTable::Num(static_cast<double>(avx) / dma, 3)});
  }
  table.Print();
  std::printf(
      "DMA submission cost: %llu cycles ~= AVX time for %.0f bytes (paper: ~1.4 KiB, §4.3)\n",
      static_cast<unsigned long long>(t.dma_submit_cycles),
      t.dma_submit_cycles * t.avx.BytesPerCycle(1400));

  PrintBanner("Figure 7-c: aggregate DMA bandwidth over the channel pool (1 MiB transfer)");
  TextTable agg({"channels", "GiB/s", "vs 1 ch", "vs AVX2"});
  const size_t kXfer = 1 * kMiB;
  const Cycles one = t.dma_submit_cycles + t.DmaTransferCycles(kXfer);
  const Cycles avx_xfer = t.avx.CopyCycles(kXfer);
  for (size_t n : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    // Chunked across n channels: each moves 1/n of the bytes in parallel.
    const Cycles cyc = t.dma_submit_cycles + t.DmaTransferCycles(kXfer / n);
    agg.AddRow({std::to_string(n), TextTable::Num(GiBps(kXfer, cyc)),
                TextTable::Num(static_cast<double>(one) / cyc, 2) + "x",
                TextTable::Num(static_cast<double>(avx_xfer) / cyc, 2) + "x"});
  }
  agg.Print();
}

// Ring backpressure: a burst of large copies through a deliberately tiny
// descriptor ring. Bounced submissions are charged (descriptors were written
// before the doorbell failed) and fall back to the CPU — the
// dma_ring_full_fallbacks counter is the Figure 7 evidence that backpressure
// never stalls the engine.
void RunRingBackpressure(const hw::TimingModel& t) {
  PrintBanner("Figure 7-d: descriptor-ring backpressure (2 channels, 4-slot rings)");
  core::CopierConfig config;
  config.dma_channel_count = 2;
  config.dma_ring_slots = 4;
  BenchStack stack(&t, config);
  apps::AppProcess* app = stack.NewApp("ringdemo");
  const size_t kCopy = 256 * kKiB;
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    const uint64_t src = app->Map(kCopy, "src");
    const uint64_t dst = app->Map(kCopy, "dst");
    app->lib()->amemcpy(dst, src, kCopy, &app->ctx());
  }
  stack.service->DrainAll();
  const core::Engine::Stats stats = stack.service->TotalStats();
  TextTable table({"batches submitted", "ring-full fallbacks", "parked rounds",
                   "stall cyc", "DMA bytes", "AVX bytes"});
  table.AddRow({TextTable::Num(stats.dma_batches_submitted, 0),
                TextTable::Num(stats.dma_ring_full_fallbacks, 0),
                TextTable::Num(stats.dma_rounds_parked, 0),
                TextTable::Num(stats.dma_stall_cycles, 0),
                TextTable::Bytes(stats.dma_bytes_submitted),
                TextTable::Bytes(stats.avx_bytes)});
  table.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  const copier::hw::TimingModel& t = copier::bench::SelectTiming(argc, argv);
  copier::bench::Run(t);
  copier::bench::RunRingBackpressure(t);
  return 0;
}
