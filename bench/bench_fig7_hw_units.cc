// Figure 7-a: standalone throughput of the copy units by transfer size.
// Expected shape: AVX2 dominates everywhere; DMA is poor for small copies
// (submission overhead + low ramp) and approaches its peak from ~4 KiB;
// ERMS sits below AVX, catching up at large sizes.
#include "bench/bench_util.h"

namespace copier::bench {
namespace {

void Run(const hw::TimingModel& t) {
  PrintBanner("Figure 7-a: copy-unit throughput by size (GiB/s, modeled at 2.9 GHz)");
  TextTable table({"size", "AVX2", "ERMS", "DMA (incl. submit)", "DMA/AVX"});
  for (size_t size = 256; size <= 1 * kMiB; size *= 2) {
    const Cycles avx = t.avx.CopyCycles(size);
    const Cycles erms = t.erms.CopyCycles(size);
    const Cycles dma = t.dma_submit_cycles + t.DmaTransferCycles(size);
    table.AddRow({TextTable::Bytes(size), TextTable::Num(GiBps(size, avx)),
                  TextTable::Num(GiBps(size, erms)), TextTable::Num(GiBps(size, dma)),
                  TextTable::Num(static_cast<double>(avx) / dma, 3)});
  }
  table.Print();
  std::printf(
      "DMA submission cost: %llu cycles ~= AVX time for %.0f bytes (paper: ~1.4 KiB, §4.3)\n",
      static_cast<unsigned long long>(t.dma_submit_cycles),
      t.dma_submit_cycles * t.avx.BytesPerCycle(1400));
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(copier::bench::SelectTiming(argc, argv));
  return 0;
}
