// Shared plumbing for the figure/table benches.
//
// Every bench runs the *real* engine/apps in virtual time (DESIGN.md §1):
// app contexts and the Copier engine context advance cycle clocks charged
// from TimingModel; latencies compose exactly as on a dedicated-copier-core
// machine. Cycles are reported in microseconds at the paper's nominal
// 2.9 GHz. Pass --calibrate to measure AVX/ERMS curves on the host instead
// of using the deterministic defaults.
#ifndef COPIER_BENCH_BENCH_UTIL_H_
#define COPIER_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/apps/app_util.h"
#include "src/common/histogram.h"
#include "src/common/table.h"
#include "src/core/linux_glue.h"

namespace copier::bench {

inline constexpr double kNominalGHz = 2.9;

inline double Us(Cycles cycles) { return static_cast<double>(cycles) / (kNominalGHz * 1e3); }
inline double GiBps(uint64_t bytes, Cycles cycles) {
  if (cycles == 0) {
    return 0;
  }
  return static_cast<double>(bytes) / cycles * kNominalGHz * 1e9 / (1024.0 * 1024 * 1024);
}

inline std::vector<size_t> StandardSizes() {
  return {1 * kKiB, 4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB};
}

// Latency tail summary shared by the latency benches (bench_binder_ipc,
// bench_fig11_redis, bench_serve) so each doesn't re-derive its own
// percentile plumbing.
struct PercentileSummary {
  double p50 = 0;
  double p99 = 0;
  double p999 = 0;
};
PercentileSummary Summarize(const Histogram& hist);

// Returns the timing model selected by argv (--calibrate measures the host).
const hw::TimingModel& SelectTiming(int argc, char** argv);
bool HasFlag(int argc, char** argv, const std::string& flag);

// A full virtual-time stack: kernel + manual-mode service + glue.
class BenchStack {
 public:
  explicit BenchStack(const hw::TimingModel* timing, core::CopierConfig config = {},
                      apps::Mode mode = apps::Mode::kCopier);

  apps::AppProcess* NewApp(const std::string& name) {
    apps_.push_back(
        std::make_unique<apps::AppProcess>(kernel.get(), service.get(), mode_, name));
    return apps_.back().get();
  }
  apps::AppProcess* NewSyncApp(const std::string& name) {
    apps_.push_back(std::make_unique<apps::AppProcess>(kernel.get(), service.get(),
                                                       apps::Mode::kSync, name));
    return apps_.back().get();
  }

  std::unique_ptr<simos::SimKernel> kernel;
  std::unique_ptr<core::CopierService> service;
  std::unique_ptr<core::CopierLinux> glue;

 private:
  apps::Mode mode_;
  std::vector<std::unique_ptr<apps::AppProcess>> apps_;
};

}  // namespace copier::bench

#endif  // COPIER_BENCH_BENCH_UTIL_H_
