// Production-serving sweep (DESIGN.md §13): open-loop load against the
// MiniKv (+ MiniProxy) stack through the serve harness, reporting tail
// latency (end-to-end p50/p99/p999 per request, plus the per-request
// copy-use window p50/p99 — first copy submit -> last KFUNC retired) and
// throughput-vs-offered-load, in virtual time and with real Copier threads.
//
// The virtual sweep runs each overload policy across offered-load multipliers
// of the calibrated capacity. The headline gate: with overload_policy=shed
// the offered load at which p999 exceeds 10x the unloaded p50 (the "knee")
// must sit strictly to the right of the kNone knee — admission control buys
// tail latency headroom. Every run also model-checks its replies and final
// store image; any mismatch or a failed knee gate prints " NO " and MISMATCH
// on stderr for scripts/bench_smoke.sh.
//
// --quick shrinks the sweep for CI; --json writes BENCH_serve.json.
#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/apps/serve_harness.h"

namespace copier::bench {
namespace {

using core::CopierConfig;

constexpr double kKneeFactor = 10.0;  // knee: p999 > kKneeFactor * unloaded p50

const char* PolicyName(CopierConfig::OverloadPolicy policy) {
  switch (policy) {
    case CopierConfig::OverloadPolicy::kNone:
      return "none";
    case CopierConfig::OverloadPolicy::kShed:
      return "shed";
    case CopierConfig::OverloadPolicy::kDefer:
      return "defer";
    case CopierConfig::OverloadPolicy::kThrottle:
      return "throttle";
  }
  return "?";
}

CopierConfig PolicyConfig(CopierConfig::OverloadPolicy policy) {
  CopierConfig config;
  config.overload_policy = policy;
  // The request-count bound binds first for this workload: it caps the
  // admitted queue depth, which is what bounds the admitted tail.
  config.admission_max_inflight_requests = 4;
  return config;
}

apps::ServeOptions BaseOptions(const hw::TimingModel& t, size_t requests) {
  apps::ServeOptions options;
  options.timing = &t;
  options.workload.seed = 7;
  options.workload.requests = requests;
  options.workload.connections = 16;
  options.workload.keys = 128;
  options.workload.value_sizes = {64, 1024, 4096};
  options.workload.value_weights = {4.0, 2.0, 1.0};
  options.workload.burst.rate_multiplier = 4.0;
  options.workload.proxy_fraction = 0.1;
  options.workload.churn_every = 64;
  return options;
}

struct SweepPoint {
  CopierConfig::OverloadPolicy policy = CopierConfig::OverloadPolicy::kNone;
  double multiplier = 0;       // offered load as a fraction of capacity
  double offered_rps = 0;      // open-loop arrival rate
  apps::ServeResult result;
  PercentileSummary tail;
  PercentileSummary copy_window;  // first submit -> last KFUNC, per request
};

SweepPoint RunPoint(const hw::TimingModel& t, CopierConfig::OverloadPolicy policy,
                    double multiplier, double capacity_gap_cycles, size_t requests) {
  apps::ServeOptions options = BaseOptions(t, requests);
  options.config = PolicyConfig(policy);
  options.workload.mean_gap_cycles = capacity_gap_cycles / multiplier;
  SweepPoint point;
  point.policy = policy;
  point.multiplier = multiplier;
  point.offered_rps = kNominalGHz * 1e9 / options.workload.mean_gap_cycles;
  point.result = apps::RunServeVirtual(options);
  point.tail = Summarize(point.result.latency);
  point.copy_window = Summarize(point.result.copy_window);
  return point;
}

// First multiplier whose p999 crosses the knee threshold; 0 = never crossed.
double Knee(const std::vector<SweepPoint>& sweep, double unloaded_p50) {
  for (const SweepPoint& point : sweep) {
    if (point.tail.p999 > kKneeFactor * unloaded_p50) {
      return point.multiplier;
    }
  }
  return 0;
}

void Run(int argc, char** argv) {
  const hw::TimingModel& t = SelectTiming(argc, argv);
  const bool quick = HasFlag(argc, argv, "--quick");
  const size_t requests = quick ? 384 : 1024;

  // --- calibration ---------------------------------------------------------
  // Unloaded tails: arrivals far apart, no queueing anywhere.
  apps::ServeOptions calib = BaseOptions(t, quick ? 192 : 384);
  calib.workload.mean_gap_cycles = 200'000;
  const apps::ServeResult unloaded = apps::RunServeVirtual(calib);
  const PercentileSummary unloaded_tail = Summarize(unloaded.latency);
  const PercentileSummary unloaded_cw = Summarize(unloaded.copy_window);
  const double unloaded_p50 = unloaded_tail.p50;
  // Capacity: a back-to-back run (every arrival queued behind the previous
  // request) measures the bottleneck service time directly — unloaded latency
  // would overestimate it, since most copy work runs concurrently on the
  // engine.
  apps::ServeOptions satur = BaseOptions(t, quick ? 192 : 384);
  satur.workload.mean_gap_cycles = 1;
  const apps::ServeResult saturated = apps::RunServeVirtual(satur);
  const double capacity_gap = saturated.span_us * kNominalGHz * 1e3 /
                              static_cast<double>(saturated.admitted);

  PrintBanner("Serving sweep (virtual): open-loop MiniKv+proxy, tail latency vs offered load");
  std::printf("unloaded p50 %.2f us, p999 %.2f us; copy-use window p50 %.2f us, p99 %.2f us; "
              "capacity ~%.0f rps; knee threshold %.2f us\n",
              unloaded_p50, unloaded_tail.p999, unloaded_cw.p50, unloaded_cw.p99,
              kNominalGHz * 1e9 / capacity_gap, kKneeFactor * unloaded_p50);

  const std::vector<double> multipliers =
      quick ? std::vector<double>{0.25, 0.9, 1.2}
            : std::vector<double>{0.25, 0.5, 0.75, 0.9, 1.0, 1.1, 1.25, 1.4};

  bool all_verified = true;
  TextTable table({"policy", "offered", "krps in", "krps out", "admit", "shed", "defer",
                   "thr", "p50", "p99", "p999", "cw p50", "cw p99", "ok"});
  auto add_point = [&](const SweepPoint& point) {
    const bool ok = point.result.replies_ok;
    all_verified = all_verified && ok;
    if (!ok) {
      std::fprintf(stderr, "MISMATCH: policy=%s x%.2f reply/store image differs from model\n",
                   PolicyName(point.policy), point.multiplier);
    }
    table.AddRow({PolicyName(point.policy), TextTable::Num(point.multiplier, 2) + "x",
                  TextTable::Num(point.offered_rps / 1e3),
                  TextTable::Num(point.result.achieved_rps / 1e3),
                  TextTable::Num(point.result.admitted, 0),
                  TextTable::Num(point.result.shed, 0),
                  TextTable::Num(point.result.defer_verdicts, 0),
                  TextTable::Num(point.result.throttle_verdicts, 0),
                  TextTable::Num(point.tail.p50), TextTable::Num(point.tail.p99),
                  TextTable::Num(point.tail.p999), TextTable::Num(point.copy_window.p50),
                  TextTable::Num(point.copy_window.p99), ok ? "yes" : "NO"});
  };

  std::vector<SweepPoint> none_sweep;
  std::vector<SweepPoint> shed_sweep;
  for (double m : multipliers) {
    none_sweep.push_back(RunPoint(t, CopierConfig::OverloadPolicy::kNone, m, capacity_gap,
                                  requests));
    add_point(none_sweep.back());
  }
  for (double m : multipliers) {
    shed_sweep.push_back(RunPoint(t, CopierConfig::OverloadPolicy::kShed, m, capacity_gap,
                                  requests));
    add_point(shed_sweep.back());
  }
  // One overloaded point each for the remaining policies (spectrum, ungated).
  const double hot = multipliers.back();
  const SweepPoint defer_point =
      RunPoint(t, CopierConfig::OverloadPolicy::kDefer, hot, capacity_gap, requests);
  add_point(defer_point);
  const SweepPoint throttle_point =
      RunPoint(t, CopierConfig::OverloadPolicy::kThrottle, hot, capacity_gap, requests);
  add_point(throttle_point);
  table.Print();

  const double knee_none = Knee(none_sweep, unloaded_p50);
  const double knee_shed = Knee(shed_sweep, unloaded_p50);
  // 0 = "never crossed within the sweep" = beyond the last multiplier.
  const double knee_none_v = knee_none == 0 ? multipliers.back() + 1 : knee_none;
  const double knee_shed_v = knee_shed == 0 ? multipliers.back() + 1 : knee_shed;
  const bool knee_ok = knee_shed_v > knee_none_v;
  if (!knee_ok) {
    std::fprintf(stderr, "MISMATCH: shed knee (%.2fx) did not move right of none (%.2fx)\n",
                 knee_shed_v, knee_none_v);
  }
  std::printf("\np999 knee (first offered load with p999 > %.0fx unloaded p50): "
              "none=%s shed=%s -> gate %s\n",
              kKneeFactor,
              knee_none == 0 ? ">sweep" : (TextTable::Num(knee_none, 2) + "x").c_str(),
              knee_shed == 0 ? ">sweep" : (TextTable::Num(knee_shed, 2) + "x").c_str(),
              knee_ok ? "OK" : " NO ");

  // --- real-threaded sweep -------------------------------------------------
  PrintBanner("Serving sweep (threaded): real Copier threads, host-clock tails");
  TextTable ttable({"policy", "gap us", "krps out", "admit", "shed", "p50", "p99", "p999",
                    "ring backoffs", "ok"});
  struct ThreadedPoint {
    const char* policy;
    double gap_us = 0;
    apps::ServeResult result;
    PercentileSummary tail;
  };
  std::vector<ThreadedPoint> threaded;
  for (const double gap_cycles : std::vector<double>{2'000'000, 500'000}) {
    for (const auto policy :
         {CopierConfig::OverloadPolicy::kNone, CopierConfig::OverloadPolicy::kShed}) {
      apps::ServeOptions options = BaseOptions(t, quick ? 128 : 256);
      options.config = PolicyConfig(policy);
      options.workload.mean_gap_cycles = gap_cycles;
      options.workload.connections = 8;
      options.ns_per_cycle = 1.0;
      options.threads = 2;
      ThreadedPoint point;
      point.policy = PolicyName(policy);
      point.gap_us = gap_cycles * options.ns_per_cycle / 1e3;
      point.result = apps::RunServeThreaded(options);
      point.tail = Summarize(point.result.latency);
      const bool ok = point.result.replies_ok;
      all_verified = all_verified && ok;
      if (!ok) {
        std::fprintf(stderr, "MISMATCH: threaded policy=%s reply/store image differs\n",
                     point.policy);
      }
      ttable.AddRow({point.policy, TextTable::Num(point.gap_us),
                     TextTable::Num(point.result.achieved_rps / 1e3),
                     TextTable::Num(point.result.admitted, 0),
                     TextTable::Num(point.result.shed, 0), TextTable::Num(point.tail.p50),
                     TextTable::Num(point.tail.p99), TextTable::Num(point.tail.p999),
                     TextTable::Num(point.result.stats.overload_ring_backoffs, 0),
                     ok ? "yes" : "NO"});
      threaded.push_back(std::move(point));
    }
  }
  ttable.Print();
  std::printf("(threaded tails include host scheduler jitter; the virtual sweep above is "
              "the tail-latency evidence)\n");

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_serve.json");
    auto emit = [&](const SweepPoint& p) {
      out << "{\"policy\": \"" << PolicyName(p.policy) << "\", \"multiplier\": "
          << p.multiplier << ", \"offered_rps\": " << p.offered_rps
          << ", \"achieved_rps\": " << p.result.achieved_rps
          << ", \"offered\": " << p.result.offered << ", \"admitted\": " << p.result.admitted
          << ", \"shed\": " << p.result.shed
          << ", \"defer_verdicts\": " << p.result.defer_verdicts
          << ", \"throttle_verdicts\": " << p.result.throttle_verdicts
          << ", \"churns\": " << p.result.churns << ", \"p50_us\": " << p.tail.p50
          << ", \"p99_us\": " << p.tail.p99 << ", \"p999_us\": " << p.tail.p999
          << ", \"copy_window_p50_us\": " << p.copy_window.p50
          << ", \"copy_window_p99_us\": " << p.copy_window.p99
          << ", \"ring_backoffs\": " << p.result.stats.overload_ring_backoffs
          << ", \"verified\": " << (p.result.replies_ok ? "true" : "false") << "}";
    };
    out << "{\n  \"bench\": \"serve\",\n  \"requests\": " << requests
        << ",\n  \"unloaded_p50_us\": " << unloaded_p50
        << ",\n  \"unloaded_p999_us\": " << unloaded_tail.p999
        << ",\n  \"unloaded_copy_window_p50_us\": " << unloaded_cw.p50
        << ",\n  \"unloaded_copy_window_p99_us\": " << unloaded_cw.p99
        << ",\n  \"capacity_rps\": " << kNominalGHz * 1e9 / capacity_gap
        << ",\n  \"knee_factor\": " << kKneeFactor << ",\n  \"virtual_sweep\": [\n";
    bool first = true;
    for (const auto* sweep : {&none_sweep, &shed_sweep}) {
      for (const SweepPoint& p : *sweep) {
        if (!first) {
          out << ",\n";
        }
        first = false;
        out << "    ";
        emit(p);
      }
    }
    out << ",\n    ";
    emit(defer_point);
    out << ",\n    ";
    emit(throttle_point);
    out << "\n  ],\n  \"knee_none\": " << knee_none_v << ",\n  \"knee_shed\": " << knee_shed_v
        << ",\n  \"knee_gate_ok\": " << (knee_ok ? "true" : "false")
        << ",\n  \"threaded_sweep\": [\n";
    for (size_t i = 0; i < threaded.size(); ++i) {
      const ThreadedPoint& p = threaded[i];
      out << "    {\"policy\": \"" << p.policy << "\", \"gap_us\": " << p.gap_us
          << ", \"achieved_rps\": " << p.result.achieved_rps
          << ", \"admitted\": " << p.result.admitted << ", \"shed\": " << p.result.shed
          << ", \"p50_us\": " << p.tail.p50 << ", \"p99_us\": " << p.tail.p99
          << ", \"p999_us\": " << p.tail.p999
          << ", \"verified\": " << (p.result.replies_ok ? "true" : "false") << "}"
          << (i + 1 < threaded.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote BENCH_serve.json\n");
  }

  if (!all_verified) {
    std::printf("model verification: NO \n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
