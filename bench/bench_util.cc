#include "bench/bench_util.h"

#include <cstring>

namespace copier::bench {

bool HasFlag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      return true;
    }
  }
  return false;
}

PercentileSummary Summarize(const Histogram& hist) {
  PercentileSummary summary;
  if (hist.Count() == 0) {
    return summary;
  }
  summary.p50 = hist.Percentile(50);
  summary.p99 = hist.Percentile(99);
  summary.p999 = hist.Percentile(99.9);
  return summary;
}

const hw::TimingModel& SelectTiming(int argc, char** argv) {
  static hw::TimingModel calibrated;
  if (HasFlag(argc, argv, "--calibrate")) {
    calibrated = hw::TimingModel::Calibrated();
    std::printf("(timing: calibrated on this host)\n");
    return calibrated;
  }
  return hw::TimingModel::Default();
}

BenchStack::BenchStack(const hw::TimingModel* timing, core::CopierConfig config,
                       apps::Mode mode)
    : mode_(mode) {
  simos::SimKernel::Config kconfig;
  kconfig.timing = timing;
  kernel = std::make_unique<simos::SimKernel>(kconfig);
  core::CopierService::Options options;
  options.config = config;
  options.timing = timing;
  service = std::make_unique<core::CopierService>(std::move(options));
  glue = std::make_unique<core::CopierLinux>(service.get(), kernel.get());
  if (mode == apps::Mode::kCopier) {
    glue->Install();
  }
}

}  // namespace copier::bench
