// Vectored-submission sweep: submission-side cost of send() with the
// scatter-gather batch path (enable_vectored_submit, the default) vs the
// per-skb ablation baseline.
//
// Every size runs the SAME workload in both modes: the sender's send()
// gathers size/4096 skbs and publishes them — as ONE scatter-gather Copy
// Task in one ring transaction with one doorbell (vectored), or as one task
// + one doorbell per skb (per-op). A plain synchronous receiver drains and
// checksums the stream, so the modes must land byte-identical images.
// Reported per mode:
//   * submission-side cycles per byte (sender context across the syscall),
//   * queue entries and doorbells (NotifyRunnable calls) per send,
//   * per-skb completion handlers run (identical across modes).
//
// --quick runs a two-size subset (CI smoke); --json additionally writes
// BENCH_submit_batch.json for scripts/bench_smoke.sh.
#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

struct ModeResult {
  size_t size = 0;
  uint64_t sends = 0;
  uint64_t submit_cycles = 0;    // sender ctx cycles across all send() calls
  uint64_t submit_entries = 0;   // copy-queue entries ingested
  uint64_t submit_batches = 0;   // scatter-gather tasks among them
  uint64_t notify_calls = 0;     // doorbells
  uint64_t kfuncs_run = 0;       // per-skb completion handlers
  uint64_t checksum = 0;         // FNV-1a over the received image
  double cycles_per_byte() const {
    return static_cast<double>(submit_cycles) / (static_cast<double>(sends) * size);
  }
};

ModeResult RunMode(const hw::TimingModel& timing, size_t size, bool vectored, int iters) {
  core::CopierConfig config;
  config.enable_vectored_submit = vectored;
  BenchStack stack(&timing, config);
  apps::AppProcess* tx = stack.NewApp("tx");
  apps::AppProcess* rx = stack.NewSyncApp("rx");  // unattached: sync recv drains
  auto [tx_sock, rx_sock] = stack.kernel->CreateSocketPair();
  core::Client* client = stack.service->ClientById(tx->proc()->copier_client_id());

  const uint64_t src = tx->Map(size, "src");
  const uint64_t dst = rx->Map(size, "dst");
  Rng rng(0xBA7C4 ^ size);
  std::vector<uint8_t> pattern(size);
  for (auto& b : pattern) {
    b = static_cast<uint8_t>(rng.Next());
  }
  tx->io().Write(src, pattern.data(), size, nullptr);

  const core::Engine::Stats before = stack.service->TotalStats();
  ModeResult result;
  result.size = size;
  result.checksum = 1469598103934665603ull;
  std::vector<uint8_t> image(size);
  for (int i = 0; i < iters; ++i) {
    ExecContext& ctx = tx->ctx();
    const Cycles start = ctx.now();
    auto sent = stack.kernel->Send(*tx->proc(), tx_sock, src, size, &ctx);
    COPIER_CHECK(sent.ok() && *sent == size) << "short send at size " << size;
    result.submit_cycles += ctx.now() - start;
    ++result.sends;
    // The Copier core drains the submission off the sender's critical path.
    while (client->HasQueuedWork()) {
      stack.service->Serve(*client);
    }
    auto got = stack.kernel->Recv(*rx->proc(), rx_sock, dst, size, nullptr);
    COPIER_CHECK(got.ok() && *got == size) << "short recv at size " << size;
    COPIER_CHECK_OK(rx->proc()->mem().ReadBytes(dst, image.data(), size));
    for (uint8_t byte : image) {
      result.checksum = (result.checksum ^ byte) * 1099511628211ull;
    }
  }
  const core::Engine::Stats after = stack.service->TotalStats();
  result.submit_entries = after.submit_entries - before.submit_entries;
  result.submit_batches = after.submit_batches - before.submit_batches;
  result.notify_calls = after.notify_calls - before.notify_calls;
  result.kfuncs_run = after.kfuncs_run - before.kfuncs_run;
  return result;
}

void Run(int argc, char** argv) {
  const hw::TimingModel& timing = SelectTiming(argc, argv);
  const bool quick = HasFlag(argc, argv, "--quick");
  PrintBanner("Vectored submission: scatter-gather batch vs per-skb tasks");
  const std::vector<size_t> sizes =
      quick ? std::vector<size_t>{64 * kKiB, kMiB}
            : std::vector<size_t>{4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, kMiB, 4 * kMiB};
  const int iters = quick ? 4 : 12;

  TextTable table({"size", "cyc/B vec", "cyc/B per-op", "speedup", "doorbells/send vec",
                   "doorbells/send per-op", "entries/send vec", "entries/send per-op",
                   "identical"});
  std::vector<std::pair<ModeResult, ModeResult>> rows;
  for (size_t size : sizes) {
    const ModeResult vec = RunMode(timing, size, /*vectored=*/true, iters);
    const ModeResult per_op = RunMode(timing, size, /*vectored=*/false, iters);
    rows.emplace_back(vec, per_op);
    table.AddRow({TextTable::Bytes(size), TextTable::Num(vec.cycles_per_byte(), 4),
                  TextTable::Num(per_op.cycles_per_byte(), 4),
                  TextTable::Num(per_op.cycles_per_byte() / vec.cycles_per_byte(), 2) + "x",
                  TextTable::Num(static_cast<double>(vec.notify_calls) / vec.sends, 1),
                  TextTable::Num(static_cast<double>(per_op.notify_calls) / per_op.sends, 1),
                  TextTable::Num(static_cast<double>(vec.submit_entries) / vec.sends, 1),
                  TextTable::Num(static_cast<double>(per_op.submit_entries) / per_op.sends, 1),
                  vec.checksum == per_op.checksum ? "yes" : "NO"});
    if (vec.checksum != per_op.checksum) {
      std::fprintf(stderr, "MISMATCH at size %zu: vectored and per-op images differ\n", size);
    }
    if (vec.kfuncs_run != per_op.kfuncs_run) {
      std::fprintf(stderr, "KFUNC MISMATCH at size %zu: %llu vectored vs %llu per-op\n", size,
                   (unsigned long long)vec.kfuncs_run, (unsigned long long)per_op.kfuncs_run);
    }
  }
  table.Print();
  std::printf("\nvectored publishes the syscall's whole skb op-list as one scatter-gather\n"
              "task: one ring transaction, one doorbell, one barrier-state check per send.\n");

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_submit_batch.json");
    out << "{\n  \"bench\": \"submit_batch\",\n  \"sizes\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& [vec, per_op] = rows[i];
      const auto mode_json = [&](const ModeResult& r) {
        std::string s;
        s += "{\"submit_cycles\": " + std::to_string(r.submit_cycles);
        s += ", \"cycles_per_byte\": " + std::to_string(r.cycles_per_byte());
        s += ", \"sends\": " + std::to_string(r.sends);
        s += ", \"submit_entries\": " + std::to_string(r.submit_entries);
        s += ", \"submit_batches\": " + std::to_string(r.submit_batches);
        s += ", \"notify_calls\": " + std::to_string(r.notify_calls);
        s += ", \"kfuncs_run\": " + std::to_string(r.kfuncs_run) + "}";
        return s;
      };
      out << "    {\"size\": " << vec.size << ",\n"
          << "     \"vectored\": " << mode_json(vec) << ",\n"
          << "     \"per_op\": " << mode_json(per_op) << ",\n"
          << "     \"submit_speedup\": " << per_op.cycles_per_byte() / vec.cycles_per_byte()
          << ", \"identical_result\": " << (vec.checksum == per_op.checksum ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote BENCH_submit_batch.json\n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
