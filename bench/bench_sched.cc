// Scheduler sweep: host-side pick cost of the sharded run-queue scheduler
// (service.h, DESIGN.md §7) vs the global-mutex linear double scan, under
// real Copier threads.
//
// Every configuration runs the SAME submission stream — each client copies a
// private source slot into `slots` destination slots, all submitted before
// Start() — in both scheduler modes, and checks the final memory images are
// identical. Reported per mode (host TSC, not the virtual cost model):
//   * pick cyc/call   — TSC cycles per PickClient invocation,
//   * scanned/call    — clients examined per call (linear baseline only),
//   * steals, targeted vs broadcast wakeups, reconcile rescues.
// The sharded pick is O(log n) under a per-shard lock, so cyc/call should
// stay roughly flat as the client count sweeps 8 -> 1024 while the linear
// baseline — which walks every client under the global mutex on every call —
// grows linearly.
//
// --json additionally writes BENCH_sched.json for scripts/bench_smoke.sh.
#include "bench/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/libcopier/libcopier.h"
#include "src/simos/kernel.h"

namespace copier::bench {
namespace {

// Total copy tasks per run is constant: sweeping the client count changes how
// the same work is spread across run queues, not how much work there is.
constexpr size_t kTotalTasks = 2048;
constexpr size_t kSlotBytes = 4 * kKiB;

struct ModeResult {
  core::CopierService::SchedStats sched;
  uint64_t bytes_copied = 0;
  double wall_ms = 0;
  uint64_t checksum = 0;  // FNV-1a over every worker's final arena image
};

// One attached process: a read-only source slot plus `slots` destinations.
struct SchedWorker {
  SchedWorker(simos::SimKernel& kernel, core::CopierService& service, size_t slots)
      : slots(slots) {
    proc = kernel.CreateProcess("schedbench");
    client = service.AttachProcess(proc);
    lib = std::make_unique<lib::CopierLib>(client, &service);
    auto va = proc->mem().MapAnonymous((slots + 1) * kSlotBytes, "arena", true);
    COPIER_CHECK(va.ok());
    arena = *va;
    Rng rng(0x5CED ^ client->id());
    std::vector<uint8_t> pattern(kSlotBytes);
    for (auto& b : pattern) {
      b = static_cast<uint8_t>(rng.Next());
    }
    COPIER_CHECK(proc->mem().WriteBytes(arena, pattern.data(), pattern.size()).ok());
  }

  size_t slots;
  simos::Process* proc = nullptr;
  core::Client* client = nullptr;
  std::unique_ptr<lib::CopierLib> lib;
  uint64_t arena = 0;
};

ModeResult RunConfig(size_t threads, size_t clients, bool sharded) {
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = threads;
  options.config.max_threads = threads;
  options.config.enable_sharded_scheduler = sharded;
  options.config.idle_spins_before_sleep = 256;  // reach the steal path
  core::CopierService service(std::move(options));

  const size_t slots = std::max<size_t>(1, kTotalTasks / clients);
  std::vector<std::unique_ptr<SchedWorker>> workers;
  workers.reserve(clients);
  for (size_t i = 0; i < clients; ++i) {
    workers.push_back(std::make_unique<SchedWorker>(kernel, service, slots));
  }
  // Submit the whole wave up front: every run queue is loaded before the
  // first pick, so pick cost is measured at the full client count.
  for (auto& worker : workers) {
    for (size_t i = 0; i < worker->slots; ++i) {
      worker->lib->amemcpy(worker->arena + (i + 1) * kSlotBytes, worker->arena, kSlotBytes);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  service.Start();
  for (auto& worker : workers) {
    COPIER_CHECK_OK(worker->lib->csync_all());
  }
  const auto wall_end = std::chrono::steady_clock::now();

  ModeResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  uint64_t hash = 1469598103934665603ull;  // FNV-1a
  std::vector<uint8_t> image;
  for (auto& worker : workers) {
    image.resize((worker->slots + 1) * kSlotBytes);
    COPIER_CHECK(worker->proc->mem().ReadBytes(worker->arena, image.data(), image.size()).ok());
    for (uint8_t byte : image) {
      hash = (hash ^ byte) * 1099511628211ull;
    }
  }
  result.checksum = hash;
  result.sched = service.sched_stats();
  result.bytes_copied = service.TotalStats().bytes_copied;
  service.Stop();
  return result;
}

double CycPerCall(const ModeResult& r) {
  return static_cast<double>(r.sched.pick_tsc_cycles) /
         std::max<uint64_t>(1, r.sched.pick_calls);
}

double ScanPerCall(const ModeResult& r) {
  return static_cast<double>(r.sched.clients_scanned) /
         std::max<uint64_t>(1, r.sched.pick_calls);
}

struct Row {
  size_t threads = 0;
  size_t clients = 0;
  ModeResult sharded;
  ModeResult linear;
};

void AddRow(TextTable& table, const Row& row) {
  const double shard_cyc = CycPerCall(row.sharded);
  const double lin_cyc = CycPerCall(row.linear);
  table.AddRow({TextTable::Num(row.threads, 0), TextTable::Num(row.clients, 0),
                TextTable::Num(shard_cyc, 0), TextTable::Num(lin_cyc, 0),
                TextTable::Num(lin_cyc / shard_cyc, 1) + "x",
                TextTable::Num(ScanPerCall(row.linear), 1),
                TextTable::Num(row.sharded.sched.steals, 0),
                TextTable::Num(row.sharded.sched.targeted_wakeups, 0),
                row.sharded.checksum == row.linear.checksum ? "yes" : "NO"});
  if (row.sharded.checksum != row.linear.checksum) {
    std::fprintf(stderr, "MISMATCH at %zu threads / %zu clients\n", row.threads,
                 row.clients);
  }
}

void EmitModeJson(std::ofstream& out, const char* key, const ModeResult& r) {
  out << "     \"" << key << "\": {\"pick_calls\": " << r.sched.pick_calls
      << ", \"picks\": " << r.sched.picks
      << ", \"pick_tsc_cycles\": " << r.sched.pick_tsc_cycles
      << ", \"cyc_per_pick_call\": " << CycPerCall(r)
      << ", \"clients_scanned\": " << r.sched.clients_scanned
      << ", \"scanned_per_call\": " << ScanPerCall(r)
      << ", \"steals\": " << r.sched.steals
      << ", \"steal_attempts\": " << r.sched.steal_attempts
      << ", \"targeted_wakeups\": " << r.sched.targeted_wakeups
      << ", \"broadcast_wakeups\": " << r.sched.broadcast_wakeups
      << ", \"reconcile_marks\": " << r.sched.reconcile_marks
      << ", \"bytes_copied\": " << r.bytes_copied
      << ", \"wall_ms\": " << r.wall_ms << "}";
}

void EmitRowsJson(std::ofstream& out, const std::vector<Row>& rows) {
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"threads\": " << row.threads << ", \"clients\": " << row.clients
        << ",\n";
    EmitModeJson(out, "sharded", row.sharded);
    out << ",\n";
    EmitModeJson(out, "linear", row.linear);
    out << ",\n     \"cyc_per_call_ratio\": "
        << CycPerCall(row.linear) / CycPerCall(row.sharded)
        << ", \"identical_result\": "
        << (row.sharded.checksum == row.linear.checksum ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
}

void Run(int argc, char** argv) {
  PrintBanner("Scheduler sweep: sharded run queues vs global-mutex linear scan");
  std::printf("(host TSC per PickClient call; %zu tasks x %zu KiB per run, both modes "
              "byte-checked)\n\n",
              kTotalTasks, kSlotBytes / kKiB);

  const std::vector<const char*> header = {"threads",   "clients",   "cyc/call shard",
                                           "cyc/call lin", "ratio",  "scan/call lin",
                                           "steals",    "targeted wakes", "identical"};

  // Client sweep at a fixed thread count: pick cost vs run-queue population.
  const size_t kSweepThreads = 4;
  std::vector<Row> client_rows;
  TextTable client_table({header.begin(), header.end()});
  for (size_t clients : {size_t{8}, size_t{64}, size_t{256}, size_t{1024}}) {
    Row row;
    row.threads = kSweepThreads;
    row.clients = clients;
    row.sharded = RunConfig(kSweepThreads, clients, /*sharded=*/true);
    row.linear = RunConfig(kSweepThreads, clients, /*sharded=*/false);
    client_rows.push_back(row);
    AddRow(client_table, row);
  }
  client_table.Print();

  // Thread sweep at a fixed client count: contention on the pick path.
  const size_t kSweepClients = 256;
  std::vector<Row> thread_rows;
  TextTable thread_table({header.begin(), header.end()});
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    Row row;
    row.threads = threads;
    row.clients = kSweepClients;
    row.sharded = RunConfig(threads, kSweepClients, /*sharded=*/true);
    row.linear = RunConfig(threads, kSweepClients, /*sharded=*/false);
    thread_rows.push_back(row);
    AddRow(thread_table, row);
  }
  std::printf("\n");
  thread_table.Print();

  const double flat = CycPerCall(client_rows.back().sharded) /
                      CycPerCall(client_rows.front().sharded);
  std::printf("\nsharded cyc/call growth 8 -> 1024 clients: %.2fx "
              "(linear baseline: %.2fx)\n",
              flat,
              CycPerCall(client_rows.back().linear) /
                  CycPerCall(client_rows.front().linear));

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_sched.json");
    out << "{\n  \"bench\": \"sched\",\n  \"total_tasks\": " << kTotalTasks
        << ",\n  \"slot_bytes\": " << kSlotBytes << ",\n  \"client_sweep_threads\": "
        << kSweepThreads << ",\n  \"client_sweep\": [\n";
    EmitRowsJson(out, client_rows);
    out << "  ],\n  \"thread_sweep_clients\": " << kSweepClients
        << ",\n  \"thread_sweep\": [\n";
    EmitRowsJson(out, thread_rows);
    out << "  ]\n}\n";
    std::printf("wrote BENCH_sched.json\n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
