// Figure 12: TinyProxy-like forwarding.
//   (a) throughput vs message size, sync vs Copier (lazy + absorption) vs zIO
//   (b) multi-instance scalability with per-process queues
//   (c) performance breakdown: async only / +hardware / +absorption
// Expected shape (paper): +7.2–32.3% throughput, zIO up to +11.6% and only
// >= 16 KiB; scalability to 16 threads; for 1 KiB async dominates, for
// 256 KiB hardware and absorption matter.
#include "bench/bench_util.h"

#include <chrono>
#include <memory>
#include <vector>

#include "src/apps/miniproxy.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

constexpr int kMessages = 24;

struct ProxyRun {
  Cycles proxy_span = 0;        // proxy-core busy span for kMessages
  Cycles engine_busy = 0;       // Copier-core busy cycles for kMessages
};

// Virtual time to forward kMessages of `body` bytes through one proxy.
ProxyRun ProxyRunOnce(const hw::TimingModel& t, size_t body_len, apps::Mode mode,
                      core::CopierConfig config) {
  BenchStack stack(&t, config, mode);
  apps::AppProcess* proxy = stack.NewApp("proxy");
  apps::AppProcess* client = stack.NewSyncApp("client");
  apps::MiniProxy mp(proxy);
  auto [client_sock, proxy_in] = stack.kernel->CreateSocketPair();
  auto [proxy_out, upstream] = stack.kernel->CreateSocketPair();
  const uint64_t cbuf = client->Map(body_len + kPageSize, "cbuf");

  const std::vector<uint8_t> body(body_len, 0x42);
  const auto msg = apps::MiniProxy::BuildMessage(1, body);
  client->io().Write(cbuf, msg.data(), msg.size(), nullptr);

  const Cycles start = proxy->ctx().now();
  const Cycles engine_start = stack.service->engine_ctx().now();
  const Cycles engine_blocked_start = stack.service->engine_ctx().blocked_cycles();
  core::Client* svc_client =
      mode == apps::Mode::kCopier
          ? stack.service->ClientById(proxy->proc()->copier_client_id())
          : nullptr;
  for (int i = 0; i < kMessages; ++i) {
    COPIER_CHECK(
        stack.kernel->Send(*client->proc(), client_sock, cbuf, msg.size(), nullptr).ok());
    auto forwarded = mp.ForwardOne(proxy_in, proxy_out, &proxy->ctx());
    COPIER_CHECK(forwarded.ok() && *forwarded) << forwarded.status().ToString();
    if (svc_client != nullptr) {
      stack.service->Serve(*svc_client);
    }
    // Upstream drains (its own core; skbs must return to the pool).
    Cycles d = 0;
    upstream->ConsumeRx(SIZE_MAX, &d, [&](simos::Skb* skb, size_t, size_t) {
      skb->pending_copies.fetch_add(1, std::memory_order_relaxed);
      simos::SimSocket::CompleteCopy(&stack.kernel->skb_pool(), skb);
    });
  }
  stack.service->DrainAll();
  // The pipeline is proxy-bound: its busy span is the throughput limiter;
  // with Copier, the engine runs on its own core in parallel.
  ProxyRun run;
  run.proxy_span = proxy->ctx().now() - start;
  run.engine_busy = (stack.service->engine_ctx().now() - engine_start) -
                    (stack.service->engine_ctx().blocked_cycles() - engine_blocked_start);
  return run;
}

Cycles ProxySpan(const hw::TimingModel& t, size_t body_len, apps::Mode mode,
                 core::CopierConfig config) {
  return ProxyRunOnce(t, body_len, mode, config).proxy_span;
}

double Mps(Cycles span) {
  return static_cast<double>(kMessages) / (Us(span) / 1e6);
}

void RunThroughput(const hw::TimingModel& t) {
  PrintBanner("Figure 12-a: TinyProxy forwarding throughput (K msgs/s)");
  TextTable table({"message", "baseline", "Copier", "zIO", "Copier gain", "zIO gain"});
  for (size_t body : StandardSizes()) {
    const double base = Mps(ProxySpan(t, body, apps::Mode::kSync, {}));
    const double copier = Mps(ProxySpan(t, body, apps::Mode::kCopier, {}));
    const double zio = Mps(ProxySpan(t, body, apps::Mode::kZio, {}));
    table.AddRow({TextTable::Bytes(body), TextTable::Num(base / 1e3),
                  TextTable::Num(copier / 1e3), TextTable::Num(zio / 1e3),
                  "+" + TextTable::Num((copier / base - 1) * 100, 1) + "%",
                  "+" + TextTable::Num((zio / base - 1) * 100, 1) + "%"});
  }
  table.Print();
}

void RunScalability(const hw::TimingModel& t) {
  PrintBanner("Figure 12-b: scalability — aggregate throughput, N proxy instances (16KiB)");
  TextTable table({"instances", "K tasks/s per queue", "aggregate K msgs/s", "speedup"});
  const ProxyRun single = ProxyRunOnce(t, 16 * kKiB, apps::Mode::kCopier, {});
  // Each instance has its own queues (per-process, lock-free). The shared
  // Copier thread saturates when the per-message engine busy time fills its
  // core; Copier auto-scales up to max_threads engines beyond that (§4.5.1) —
  // reported here for the paper's single-service configuration.
  const double per_instance = Mps(single.proxy_span);
  const double engine_cap =
      static_cast<double>(kMessages) / (Us(single.engine_busy) / 1e6);
  double base_agg = 0;
  for (int n : {1, 2, 4, 8, 16}) {
    const double aggregate = std::min(per_instance * n, engine_cap);
    if (n == 1) {
      base_agg = aggregate;
    }
    const double tasks_per_queue =
        std::min(per_instance, aggregate / n) * 3;  // ~3 tasks per message
    table.AddRow({std::to_string(n), TextTable::Num(tasks_per_queue / 1e3, 1),
                  TextTable::Num(aggregate / 1e3), TextTable::Num(aggregate / base_agg, 2)});
  }
  table.Print();
  std::printf("(engine saturates at %.0fK msgs/s; the paper scales to 16 threads with >130K "
              "tasks/s per queue)\n", engine_cap / 1e3);
}

// --scalability: the same 16-instance story under *real* Copier threads
// instead of the virtual-time composition above. Sixteen clients submit
// identical forwarding-sized copy waves to a 16-thread service; the sharded
// run-queue scheduler is compared against the global-mutex linear baseline
// on host wall clock, and the final memory images must match byte for byte.
struct ThreadedScaleResult {
  double wall_ms = 0;
  uint64_t bytes_copied = 0;
  core::CopierService::SchedStats sched;
  uint64_t checksum = 0;
};

ThreadedScaleResult ThreadedScaleRun(size_t threads, size_t instances, bool sharded) {
  constexpr size_t kSlots = 96;        // messages per instance
  constexpr size_t kSlotBytes = 16 * kKiB;  // the figure's message size
  simos::SimKernel kernel;
  core::CopierService::Options options;
  options.mode = core::CopierService::Mode::kThreaded;
  options.config.min_threads = threads;
  options.config.max_threads = threads;
  options.config.enable_sharded_scheduler = sharded;
  // Threads far outnumber host cores here: let an idle thread reach the
  // steal/sleep path quickly instead of spinning away its OS quantum, so a
  // hot shard whose owner is descheduled is picked up promptly.
  options.config.idle_spins_before_sleep = 64;
  core::CopierService service(std::move(options));

  struct Instance {
    simos::Process* proc = nullptr;
    core::Client* client = nullptr;
    std::unique_ptr<lib::CopierLib> lib;
    uint64_t arena = 0;
  };
  std::vector<Instance> proxies(instances);
  for (size_t i = 0; i < instances; ++i) {
    Instance& proxy = proxies[i];
    proxy.proc = kernel.CreateProcess("proxy");
    proxy.client = service.AttachProcess(proxy.proc);
    proxy.lib = std::make_unique<lib::CopierLib>(proxy.client, &service);
    auto va = proxy.proc->mem().MapAnonymous((kSlots + 1) * kSlotBytes, "arena", true);
    COPIER_CHECK(va.ok());
    proxy.arena = *va;
    std::vector<uint8_t> msg(kSlotBytes, static_cast<uint8_t>(0x42 + i));
    COPIER_CHECK(proxy.proc->mem().WriteBytes(proxy.arena, msg.data(), msg.size()).ok());
  }
  for (auto& proxy : proxies) {
    for (size_t i = 0; i < kSlots; ++i) {
      proxy.lib->amemcpy(proxy.arena + (i + 1) * kSlotBytes, proxy.arena, kSlotBytes);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  service.Start();
  for (auto& proxy : proxies) {
    COPIER_CHECK_OK(proxy.lib->csync_all());
  }
  const auto wall_end = std::chrono::steady_clock::now();

  ThreadedScaleResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
  uint64_t hash = 1469598103934665603ull;  // FNV-1a over every arena
  std::vector<uint8_t> image((kSlots + 1) * kSlotBytes);
  for (auto& proxy : proxies) {
    COPIER_CHECK(proxy.proc->mem().ReadBytes(proxy.arena, image.data(), image.size()).ok());
    for (uint8_t byte : image) {
      hash = (hash ^ byte) * 1099511628211ull;
    }
  }
  result.checksum = hash;
  result.bytes_copied = service.TotalStats().bytes_copied;
  result.sched = service.sched_stats();
  service.Stop();
  return result;
}

void RunThreadedScalability() {
  PrintBanner("Figure 12-b (--scalability): real threads — sharded vs linear scheduler");
  TextTable table({"threads", "instances", "sharded ms", "linear ms", "speedup",
                   "steals", "identical"});
  for (size_t threads : {size_t{4}, size_t{16}}) {
    const size_t instances = 16;
    const ThreadedScaleResult sharded =
        ThreadedScaleRun(threads, instances, /*sharded=*/true);
    const ThreadedScaleResult linear =
        ThreadedScaleRun(threads, instances, /*sharded=*/false);
    table.AddRow({TextTable::Num(threads, 0), TextTable::Num(instances, 0),
                  TextTable::Num(sharded.wall_ms, 1), TextTable::Num(linear.wall_ms, 1),
                  TextTable::Num(linear.wall_ms / sharded.wall_ms, 2) + "x",
                  TextTable::Num(sharded.sched.steals, 0),
                  sharded.checksum == linear.checksum ? "yes" : "NO"});
    if (sharded.checksum != linear.checksum) {
      std::fprintf(stderr, "MISMATCH: sharded and linear images differ at %zu threads\n",
                   threads);
    }
  }
  table.Print();
  std::printf("(per-queue submission is lock-free either way; the scheduler pick is what "
              "the sharding removes from the global lock)\n");
}

void RunBreakdown(const hw::TimingModel& t) {
  PrintBanner("Figure 12-c: breakdown — async / +hardware / +absorption (proxy latency gain)");
  TextTable table({"message", "async only", "+hardware (DMA piggyback)", "+absorption (full)"});
  for (size_t body : {size_t{1 * kKiB}, size_t{256 * kKiB}}) {
    const double base = Mps(ProxySpan(t, body, apps::Mode::kSync, {}));
    core::CopierConfig async_only;
    async_only.use_dma = false;
    async_only.enable_absorption = false;
    core::CopierConfig with_hw;
    with_hw.enable_absorption = false;
    const double a = Mps(ProxySpan(t, body, apps::Mode::kCopier, async_only));
    const double h = Mps(ProxySpan(t, body, apps::Mode::kCopier, with_hw));
    const double f = Mps(ProxySpan(t, body, apps::Mode::kCopier, {}));
    table.AddRow({TextTable::Bytes(body),
                  "+" + TextTable::Num((a / base - 1) * 100, 1) + "%",
                  "+" + TextTable::Num((h / base - 1) * 100, 1) + "%",
                  "+" + TextTable::Num((f / base - 1) * 100, 1) + "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  if (copier::bench::HasFlag(argc, argv, "--scalability")) {
    copier::bench::RunThreadedScalability();
    return 0;
  }
  const auto& t = copier::bench::SelectTiming(argc, argv);
  copier::bench::RunThroughput(t);
  copier::bench::RunScalability(t);
  copier::bench::RunBreakdown(t);
  return 0;
}
