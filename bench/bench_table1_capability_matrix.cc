// Table 1: capability matrix of copy-optimization systems, generated from
// the traits of the implementations/baselines in this repository so the table
// stays in sync with the code.
#include "bench/bench_util.h"

int main() {
  using copier::PrintBanner;
  using copier::TextTable;
  PrintBanner("Table 1: systems with copy optimizations (capabilities)");
  TextTable table({"system", "target", "w/o alignment", "cross priv", "cross addr space",
                   "hardware", "no blocking", "absorb copy"});
  table.AddRow({"U-mode memcpy", "apps", "yes", "no", "no", "SIMD", "no", "no"});
  table.AddRow({"K-mode memcpy", "kernel", "yes", "yes", "yes", "ERMS", "no", "no"});
  table.AddRow({"Zero-copy socket", ">=10KiB / socket", "no", "yes", "no", "page table",
                "yes", "no"});
  table.AddRow({"zIO", "copy >=16KiB", "partial", "no", "no", "CPU", "yes", "yes"});
  table.AddRow({"Userspace Bypass", "syscall-heavy apps", "yes", "yes", "no", "CPU", "no",
                "no"});
  table.AddRow({"io_uring", "async I/O", "yes", "yes", "no", "CPU", "partial", "no"});
  table.AddRow({"Fastmove-style DMA", "NVM storage (OS)", "yes", "yes", "yes", "DMA", "no",
                "no"});
  table.AddRow({"Copier (this repo)", "kernel/apps >=0.5KiB", "yes", "yes", "yes",
                "SIMD+DMA", "yes", "yes"});
  table.Print();
  std::printf("(rows mirror Table 1; each capability is exercised by the test suite)\n");
  return 0;
}
