// Queue-depth sweep: coordination cost of the Engine's pending-task lookups
// as the outstanding-task count grows, with the pending-range interval index
// (enable_range_index, the default) vs the linear-scan baseline.
//
// Every depth runs the SAME submission stream — mostly-disjoint small copies
// through a shared working region, a slice of absorption chains, plus
// promotes and aborts arriving at full depth — in both modes, and checks the
// final memory images are identical. Reported per mode:
//   * engine virtual cycles per task (the service-side cost of one task),
//   * dep_tasks_scanned per task (candidates examined by all lookups),
//   * dep_probes (lookups issued).
// The index turns each lookup from O(pending) into O(log n + k), so cycles
// and candidates per task should stay roughly flat while the baseline grows
// linearly with depth (O(n²) total).
//
// --json additionally writes BENCH_queue_depth.json for scripts/bench_smoke.sh.
#include "bench/bench_util.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/libcopier/libcopier.h"

namespace copier::bench {
namespace {

struct DepthResult {
  size_t depth = 0;
  size_t peak_pending = 0;
  uint64_t engine_cycles = 0;
  uint64_t dep_probes = 0;
  uint64_t dep_tasks_scanned = 0;
  uint64_t bytes_copied = 0;
  uint64_t checksum = 0;  // FNV-1a over the final arena image
};

DepthResult RunDepth(const hw::TimingModel& timing, size_t depth, bool indexed) {
  core::CopierConfig config;
  config.enable_range_index = indexed;
  config.queue_capacity = 16384;  // hold the whole wave before serving
  BenchStack stack(&timing, config);
  apps::AppProcess* app = stack.NewApp("depthbench");
  core::Client* client = stack.service->ClientById(app->proc()->copier_client_id());

  // Arena: S = read-only source pool; W = working region (2 slots of
  // headroom per task keeps most writes disjoint, with real overlap chains);
  // X = abort scratch, one slot per aborted task, never read.
  const size_t kLen = kKiB;
  const size_t kS = 512 * kKiB;
  const size_t kW = depth * 2 * kLen;
  const size_t kAborts = 8;
  const uint64_t arena = app->Map(kS + kW + kAborts * kLen, "arena");
  const uint64_t w_base = arena + kS;
  const uint64_t x_base = arena + kS + kW;

  Rng rng(0xC0FFEE ^ depth);
  std::vector<uint64_t> recent_dsts;  // absorption-chain feeders
  size_t aborts_submitted = 0;
  for (size_t i = 0; i < depth; ++i) {
    if (i % (depth / kAborts) == depth / kAborts - 1 && aborts_submitted < kAborts) {
      // Abort victim: its X slot keeps the initial bytes in both modes.
      app->lib()->amemcpy(x_base + aborts_submitted * kLen, arena + rng.Below(kS - kLen),
                          kLen, &app->ctx());
      ++aborts_submitted;
      continue;
    }
    const uint64_t dst = w_base + (i * 2 * kLen) % kW;
    uint64_t src;
    if (i % 16 == 5 && !recent_dsts.empty()) {
      src = recent_dsts[rng.Below(recent_dsts.size())];  // RAW on a pending write
    } else {
      src = arena + rng.Below(kS - kLen);
    }
    app->lib()->amemcpy(dst, src, kLen, &app->ctx());
    recent_dsts.push_back(dst);
    if (recent_dsts.size() > 8) {
      recent_dsts.erase(recent_dsts.begin());
    }
  }

  // Ingest the whole wave without executing (ingestion is capped per poll):
  // the pending list reaches full depth before the first byte moves.
  while (!client->default_pair().user.copy_q.Empty()) {
    stack.service->Serve(*client, 0);
  }
  DepthResult result;
  result.depth = depth;
  result.peak_pending = client->pending.size();

  // Sync traffic at full depth: abort the X writers, promote a few ranges.
  for (size_t a = 0; a < aborts_submitted; ++a) {
    core::SyncTask sync;
    sync.kind = core::SyncTask::Kind::kAbort;
    sync.addr = core::MemRef::User(client->space(), x_base + a * kLen);
    sync.length = kLen;
    client->default_pair().user.sync_q.TryPush(std::move(sync));
  }
  for (size_t p = 0; p < 4; ++p) {
    core::SyncTask sync;
    sync.kind = core::SyncTask::Kind::kPromote;
    sync.addr = core::MemRef::User(client->space(), w_base + (p * kW / 4) % kW);
    sync.length = 4 * kLen;
    client->default_pair().user.sync_q.TryPush(std::move(sync));
  }
  stack.service->DrainAll();

  const core::Engine::Stats stats = stack.service->TotalStats();
  result.engine_cycles = stack.service->engine_ctx().now();
  result.dep_probes = stats.dep_probes;
  result.dep_tasks_scanned = stats.dep_tasks_scanned;
  result.bytes_copied = stats.bytes_copied;

  uint64_t hash = 1469598103934665603ull;  // FNV-1a over the final image
  std::vector<uint8_t> image(kS + kW + kAborts * kLen);
  if (!app->proc()->mem().ReadBytes(arena, image.data(), image.size()).ok()) {
    std::fprintf(stderr, "arena readback failed at depth %zu\n", depth);
  }
  for (uint8_t byte : image) {
    hash = (hash ^ byte) * 1099511628211ull;
  }
  result.checksum = hash;
  return result;
}

void Run(int argc, char** argv) {
  const hw::TimingModel& timing = SelectTiming(argc, argv);
  PrintBanner("Queue-depth sweep: interval index vs linear pending-list scans");
  const std::vector<size_t> depths = {16, 64, 256, 1024, 2048, 4096};

  TextTable table({"depth", "cyc/task idx", "cyc/task lin", "speedup", "scanned/task idx",
                   "scanned/task lin", "reduction", "identical"});
  std::vector<std::pair<DepthResult, DepthResult>> rows;
  for (size_t depth : depths) {
    const DepthResult idx = RunDepth(timing, depth, /*indexed=*/true);
    const DepthResult lin = RunDepth(timing, depth, /*indexed=*/false);
    rows.emplace_back(idx, lin);
    const double idx_cyc = static_cast<double>(idx.engine_cycles) / depth;
    const double lin_cyc = static_cast<double>(lin.engine_cycles) / depth;
    const double idx_scan = static_cast<double>(idx.dep_tasks_scanned) / depth;
    const double lin_scan = static_cast<double>(lin.dep_tasks_scanned) / depth;
    table.AddRow({TextTable::Num(depth, 0), TextTable::Num(idx_cyc, 0),
                  TextTable::Num(lin_cyc, 0), TextTable::Num(lin_cyc / idx_cyc, 1) + "x",
                  TextTable::Num(idx_scan, 1), TextTable::Num(lin_scan, 1),
                  TextTable::Num(lin_scan / (idx_scan > 0 ? idx_scan : 1), 1) + "x",
                  idx.checksum == lin.checksum ? "yes" : "NO"});
    if (idx.checksum != lin.checksum) {
      std::fprintf(stderr, "MISMATCH at depth %zu: indexed and linear images differ\n",
                   depth);
    }
  }
  table.Print();
  std::printf("\npeak pending at the largest depth: %zu (indexed), %zu (linear)\n",
              rows.back().first.peak_pending, rows.back().second.peak_pending);

  if (HasFlag(argc, argv, "--json")) {
    std::ofstream out("BENCH_queue_depth.json");
    out << "{\n  \"bench\": \"queue_depth\",\n  \"depths\": [\n";
    for (size_t i = 0; i < rows.size(); ++i) {
      const auto& [idx, lin] = rows[i];
      out << "    {\"depth\": " << idx.depth << ",\n"
          << "     \"indexed\": {\"engine_cycles\": " << idx.engine_cycles
          << ", \"cycles_per_task\": " << idx.engine_cycles / idx.depth
          << ", \"dep_probes\": " << idx.dep_probes
          << ", \"dep_tasks_scanned\": " << idx.dep_tasks_scanned
          << ", \"scanned_per_task\": "
          << static_cast<double>(idx.dep_tasks_scanned) / idx.depth
          << ", \"bytes_copied\": " << idx.bytes_copied
          << ", \"peak_pending\": " << idx.peak_pending << "},\n"
          << "     \"linear\": {\"engine_cycles\": " << lin.engine_cycles
          << ", \"cycles_per_task\": " << lin.engine_cycles / lin.depth
          << ", \"dep_probes\": " << lin.dep_probes
          << ", \"dep_tasks_scanned\": " << lin.dep_tasks_scanned
          << ", \"scanned_per_task\": "
          << static_cast<double>(lin.dep_tasks_scanned) / lin.depth
          << ", \"bytes_copied\": " << lin.bytes_copied
          << ", \"peak_pending\": " << lin.peak_pending << "},\n"
          << "     \"cycles_speedup\": "
          << static_cast<double>(lin.engine_cycles) / idx.engine_cycles
          << ", \"scanned_reduction\": "
          << static_cast<double>(lin.dep_tasks_scanned) /
                 (idx.dep_tasks_scanned > 0 ? idx.dep_tasks_scanned : 1)
          << ", \"identical_result\": " << (idx.checksum == lin.checksum ? "true" : "false")
          << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("wrote BENCH_queue_depth.json\n");
  }
}

}  // namespace
}  // namespace copier::bench

int main(int argc, char** argv) {
  copier::bench::Run(argc, argv);
  return 0;
}
