// Example: Copier-accelerated copy-on-write fault handling (§5.2, §6.1.2).
//
//   $ ./build/examples/cow_fork
//
// Forks a process with a 2 MiB huge-page region, then writes into the shared
// pages. With AccelerateCow, the fault handler copies the head of each block
// while Copier copies the tail in parallel, then syncs before the PTE update.
#include <cstdio>

#include "src/core/linux_glue.h"

using namespace copier;

namespace {

double RunOnce(bool accelerate) {
  simos::SimKernel kernel;
  core::CopierService service{core::CopierService::Options{}};
  core::CopierLinux glue(&service, &kernel);
  glue.Install();

  simos::Process* parent = kernel.CreateProcess("parent");
  core::Client* client = service.AttachProcess(parent);
  (void)client;
  if (accelerate) {
    glue.AccelerateCow(*parent);
  }

  const size_t block = simos::kHugePageSize;
  const uint64_t va = parent->mem().MapAnonymous(4 * block, "data", false, true).value();
  for (int i = 0; i < 4; ++i) {
    uint8_t b = 1;
    (void)parent->mem().WriteBytes(va + i * block, &b, 1);
  }
  auto child = kernel.Fork(*parent, nullptr);
  if (!child.ok()) {
    return -1;
  }

  ExecContext ctx("parent");
  const Cycles start = ctx.now();
  for (int i = 0; i < 4; ++i) {
    uint8_t b = 2;  // triggers the 2 MiB CoW break
    (void)parent->mem().WriteBytes(va + i * block, &b, 1, &ctx);
  }
  return static_cast<double>(ctx.now() - start) / 4 / 2900.0;  // us/fault
}

}  // namespace

int main() {
  std::printf("CoW fault handling, 2MiB blocks (blocking time per fault):\n");
  const double base = RunOnce(false);
  std::printf("  stock handler (ERMS copies all) : %.1f us\n", base);
  const double split = RunOnce(true);
  std::printf("  Copier split handler            : %.1f us  (-%.1f%%)\n", split,
              (1 - split / base) * 100);
  return 0;
}
