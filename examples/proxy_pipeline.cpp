// Example: lazy copy + copy absorption in a forwarding proxy (§4.4, §6.2.2).
//
//   $ ./build/examples/proxy_pipeline
//
// The proxy touches only message headers; bodies flow kernel->kernel through
// Copier's absorption: the lazy recv (K1->U) and lazy organize copy (U->U')
// collapse into the send's K1->K2, and the mediators are aborted afterwards.
#include <cstdio>

#include "src/apps/miniproxy.h"
#include "src/core/linux_glue.h"

using namespace copier;

int main() {
  simos::SimKernel kernel;
  core::CopierService service{core::CopierService::Options{}};
  core::CopierLinux glue(&service, &kernel);
  glue.Install();

  apps::AppProcess proxy(&kernel, &service, apps::Mode::kCopier, "proxy");
  apps::AppProcess client(&kernel, &service, apps::Mode::kSync, "client");
  apps::AppProcess upstream(&kernel, &service, apps::Mode::kSync, "upstream");
  apps::MiniProxy mp(&proxy);
  auto [client_sock, proxy_in] = kernel.CreateSocketPair();
  auto [proxy_out, upstream_sock] = kernel.CreateSocketPair();

  const std::vector<uint8_t> body(64 * 1024, 0x44);
  const auto msg = apps::MiniProxy::BuildMessage(3, body);
  const uint64_t cbuf = client.Map(128 * 1024, "cbuf");
  const uint64_t ubuf = upstream.Map(128 * 1024, "ubuf");
  client.io().Write(cbuf, msg.data(), msg.size(), nullptr);

  for (int i = 0; i < 8; ++i) {
    (void)kernel.Send(*client.proc(), client_sock, cbuf, msg.size(), nullptr);
    auto forwarded = mp.ForwardOne(proxy_in, proxy_out, &proxy.ctx());
    if (!forwarded.ok()) {
      std::printf("forward failed: %s\n", forwarded.status().ToString().c_str());
      return 1;
    }
    service.DrainAll();
    auto got = kernel.Recv(*upstream.proc(), upstream_sock, ubuf,
                           msg.size() + 16, nullptr);
    if (!got.ok()) {
      std::printf("upstream recv failed\n");
      return 1;
    }
  }

  const auto& stats = service.engine().stats();
  std::printf("forwarded %llu messages of %zu bytes\n",
              static_cast<unsigned long long>(mp.forwarded()), msg.size());
  std::printf("bytes absorbed past intermediates: %llu (of %llu copied)\n",
              static_cast<unsigned long long>(stats.bytes_absorbed),
              static_cast<unsigned long long>(stats.bytes_copied));
  std::printf("lazy mediator bytes never executed: %llu; tasks aborted: %llu\n",
              static_cast<unsigned long long>(stats.lazy_absorbed_bytes),
              static_cast<unsigned long long>(stats.tasks_aborted));
  return 0;
}
