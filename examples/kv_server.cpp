// Example: a Redis-like KV server accelerated by Copier (§6.2.1).
//
//   $ ./build/examples/kv_server
//
// Runs the same workload against the synchronous baseline and the
// Copier-ported server, printing per-request virtual-time latencies, and
// showing the engine's absorption at work (recv -> store short-circuits).
#include <cstdio>

#include "src/apps/minikv.h"
#include "src/core/linux_glue.h"

using namespace copier;

namespace {

double RunOnce(apps::Mode mode) {
  simos::SimKernel kernel;
  core::CopierService service{core::CopierService::Options{}};
  core::CopierLinux glue(&service, &kernel);
  if (mode == apps::Mode::kCopier) {
    glue.Install();
  }
  apps::AppProcess server(&kernel, &service, mode, "kv-server");
  apps::AppProcess client(&kernel, &service, apps::Mode::kSync, "kv-client");
  apps::MiniKv kv(&server);
  auto [client_sock, server_sock] = kernel.CreateSocketPair();
  const uint64_t cbuf = client.Map(256 * 1024, "cbuf");

  const std::vector<uint8_t> value(16 * 1024, 0xAB);
  Cycles total = 0;
  for (int i = 0; i < 32; ++i) {
    const bool is_set = i % 2 == 0;
    const auto req = is_set ? apps::MiniKv::BuildSet("user:1000", value)
                            : apps::MiniKv::BuildGet("user:1000");
    client.io().Write(cbuf, req.data(), req.size(), nullptr);
    (void)kernel.Send(*client.proc(), client_sock, cbuf, req.size(), nullptr);

    server.ctx().WaitUntil(client.ctx().now());
    const Cycles start = server.ctx().now();
    auto processed = kv.ProcessOne(server_sock, &server.ctx());
    if (!processed.ok()) {
      std::printf("error: %s\n", processed.status().ToString().c_str());
      return -1;
    }
    total += server.ctx().now() - start;
    service.DrainAll();
    // Client drains the reply.
    const size_t reply = is_set ? 5 : apps::MiniKv::GetReplySize(value.size());
    (void)kernel.Recv(*client.proc(), client_sock, cbuf, reply, nullptr);
  }
  if (mode == apps::Mode::kCopier) {
    const auto& stats = service.engine().stats();
    std::printf("  [copier] tasks=%llu absorbed=%llu bytes, DMA=%llu bytes, barriers=%llu\n",
                static_cast<unsigned long long>(stats.tasks_completed),
                static_cast<unsigned long long>(stats.bytes_absorbed),
                static_cast<unsigned long long>(stats.dma_bytes_completed),
                static_cast<unsigned long long>(stats.barriers_processed));
  }
  return static_cast<double>(total) / 32 / 2900.0;  // us at 2.9 GHz
}

}  // namespace

int main() {
  std::printf("MiniKV, 16KiB values, alternating SET/GET (server-side us/request):\n");
  const double sync_us = RunOnce(apps::Mode::kSync);
  std::printf("  sync baseline : %.2f us\n", sync_us);
  const double copier_us = RunOnce(apps::Mode::kCopier);
  std::printf("  with Copier   : %.2f us  (%.1f%% less time on the server core)\n", copier_us,
              (1 - copier_us / sync_us) * 100);
  return 0;
}
