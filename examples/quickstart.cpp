// Quickstart: the amemcpy/csync programming model in five minutes.
//
//   $ ./build/examples/quickstart
//
// Sets up the simulated OS + Copier service, attaches a process, and walks
// through the paper's copyUse() example (Fig. 4): submit an async copy, do
// other work during the Copy-Use window, csync before the first use.
#include <cstdio>

#include "src/core/linux_glue.h"
#include "src/core/service.h"
#include "src/libcopier/libcopier.h"
#include "src/simos/kernel.h"

using namespace copier;

int main() {
  // 1. Boot the substrate: a simulated kernel and the Copier service (manual
  //    mode: we pump the service explicitly; see ThreadedService tests for
  //    real Copier threads).
  simos::SimKernel kernel;
  core::CopierService service{core::CopierService::Options{}};
  core::CopierLinux glue(&service, &kernel);
  glue.Install();  // Copier-Linux: syscall copies become async k-mode tasks

  // 2. Create a process, attach it to Copier, bind libCopier.
  simos::Process* proc = kernel.CreateProcess("quickstart");
  core::Client* client = service.AttachProcess(proc);
  lib::CopierLib copier_lib(client, &service);

  // 3. Map two buffers and fill the source.
  const size_t n = 64 * 1024;
  const uint64_t src = proc->mem().MapAnonymous(n, "src", true).value();
  const uint64_t dst = proc->mem().MapAnonymous(n, "dst", true).value();
  std::vector<uint8_t> message(n);
  for (size_t i = 0; i < n; ++i) {
    message[i] = static_cast<uint8_t>(i * 7);
  }
  (void)proc->mem().WriteBytes(src, message.data(), n);

  // 4. The paper's copyUse() (Fig. 4): async copy, overlap, sync, use.
  ExecContext app("app");
  copier_lib.amemcpy(dst, src, n, &app);  // returns immediately
  std::printf("amemcpy submitted (app clock: %llu cycles)\n",
              static_cast<unsigned long long>(app.now()));

  // ... some work: this is the Copy-Use window the service exploits ...
  app.Charge(20000);

  // Sync only the first 8 bytes before reading them (fine-grained segments).
  if (!copier_lib.csync(dst, 8, &app).ok()) {
    std::printf("csync failed!\n");
    return 1;
  }
  uint8_t head[8];
  (void)proc->mem().ReadBytes(dst, head, sizeof(head));
  std::printf("first byte after csync: %u (expected %u)\n", head[0], message[0]);

  // 5. csync_all() settles everything (end-of-life barrier).
  (void)copier_lib.csync_all(&app);
  std::vector<uint8_t> out(n);
  (void)proc->mem().ReadBytes(dst, out.data(), n);
  std::printf("full copy %s; app clock %llu cycles; service copied %llu bytes "
              "(%llu via DMA)\n",
              out == message ? "verified" : "MISMATCH",
              static_cast<unsigned long long>(app.now()),
              static_cast<unsigned long long>(service.engine().stats().bytes_copied),
              static_cast<unsigned long long>(service.engine().stats().dma_bytes_completed));
  return out == message ? 0 : 1;
}
